package trace

import (
	"strings"
	"testing"
	"time"
)

const sampleIBench = `# dtrace ibench capture
1679588291.000100 1679588291.000130 5 open 3 0 "/Library/app/db" 0x0002 0644
1679588291.000200 1679588291.000215 5 pread 4096 0 3 4096 8192
1679588291.000300 1679588291.000308 6 getattrlist 0 0 "/Library/app/db"
1679588291.000400 1679588291.000405 6 stat64 -1 2 "/Library/missing"
1679588291.000500 1679588291.000560 5 exchangedata 0 0 "/Library/a" "/Library/b"
1679588291.000600 1679588291.000640 5 fcntl 0 0 3 "F_FULLFSYNC" 0
1679588291.000700 1679588291.000705 5 close 0 0 3
1679588291.000800 1679588291.000805 6 gettimeofday 0 0
1679588291.000900 1679588291.000930 6 aio_read 9 0 4 4096 0
1679588291.001000 1679588291.001001 6 aio_return 4096 0 9
`

func TestParseIBench(t *testing.T) {
	tr, err := ParseIBench(strings.NewReader(sampleIBench))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Platform != "osx" {
		t.Fatalf("platform = %s", tr.Platform)
	}
	// gettimeofday is skipped.
	if len(tr.Records) != 9 {
		for _, r := range tr.Records {
			t.Logf("%+v", r)
		}
		t.Fatalf("records = %d, want 9", len(tr.Records))
	}
	r0 := tr.Records[0]
	if r0.Call != "open" || r0.Path != "/Library/app/db" || r0.Ret != 3 ||
		r0.Flags != ORdwr || r0.Mode != 0o644 || r0.TID != 5 {
		t.Fatalf("open = %+v", r0)
	}
	if r0.Start != 0 || r0.End != 30*time.Microsecond {
		t.Fatalf("open times = %v..%v", r0.Start, r0.End)
	}
	r1 := tr.Records[1]
	if r1.Call != "pread" || r1.FD != 3 || r1.Size != 4096 || r1.Offset != 8192 {
		t.Fatalf("pread = %+v", r1)
	}
	r3 := tr.Records[3]
	if r3.Err != "ENOENT" || r3.Ret != -1 {
		t.Fatalf("failed stat = %+v", r3)
	}
	r4 := tr.Records[4]
	if r4.Call != "exchangedata" || r4.Path2 != "/Library/b" {
		t.Fatalf("exchangedata = %+v", r4)
	}
	r5 := tr.Records[5]
	if r5.Call != "fcntl" || r5.Name != "F_FULLFSYNC" || r5.FD != 3 {
		t.Fatalf("fcntl = %+v", r5)
	}
	r7 := tr.Records[7]
	if r7.Call != "aio_read" || r7.AIO != 9 || r7.FD != 4 {
		t.Fatalf("aio_read = %+v", r7)
	}
	r8 := tr.Records[8]
	if r8.Call != "aio_return" || r8.AIO != 9 {
		t.Fatalf("aio_return = %+v", r8)
	}
	for i, r := range tr.Records {
		if r.Seq != int64(i) {
			t.Fatalf("seq[%d] = %d", i, r.Seq)
		}
	}
}

func TestParseIBenchErrors(t *testing.T) {
	cases := []string{
		"1679.0 1679.1 5 open 3",               // too few fields
		"xx 1679.1 5 open 3 0 \"/a\" 0 0",      // bad entry ts
		"1679.0 yy 5 open 3 0 \"/a\" 0 0",      // bad return ts
		"1679.0 1679.1 zz open 3 0 \"/a\" 0 0", // bad tid
		"1679.0 1679.1 5 open qq 0 \"/a\" 0 0", // bad ret
		"1679.0 1679.1 5 open 3 ee \"/a\" 0 0", // bad errno
		"1679.0 1679.1 5 open 3 0 /a 0 0",      // unquoted path
		"1679.0 1679.1 5 rename 0 0 \"/a\"",    // missing second path
	}
	for _, c := range cases {
		if _, err := ParseIBench(strings.NewReader(c + "\n")); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
}

func TestParseIBenchGuardedOpen(t *testing.T) {
	in := `1679.000001 1679.000002 1 guarded_open_np 3 0 "/f" 0x0 0644` + "\n"
	tr, err := ParseIBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1 || tr.Records[0].Call != "open" {
		t.Fatalf("records = %+v", tr.Records)
	}
}
