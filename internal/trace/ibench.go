package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"rootreplay/internal/vfs"
)

// ParseIBench parses the dtrace-generated format used by the iBench
// traces of Apple desktop applications (§4.3.1). Each line is one
// completed call:
//
//	entry return tid call ret errno args...
//
// where entry/return are epoch seconds with fractional digits (as
// dtrace's walltimestamp prints them), errno is the numeric error (0 on
// success), paths are double-quoted, and the remaining arguments are
// call-specific in the syscall's natural order, e.g.
//
//	1679588291.000100 1679588291.000130 5 open 3 0 "/a/b" 0x0002 0644
//	1679588291.000200 1679588291.000215 5 pread 4096 0 3 4096 8192
//	1679588291.000300 1679588291.000308 5 getattrlist 0 0 "/a/b"
//
// Timestamps are rebased so the earliest entry is zero. Unknown calls
// are skipped, mirroring ParseStrace.
func ParseIBench(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	tr := &Trace{Platform: "osx"}
	lineNo := 0
	base := int64(-1)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		toks, err := fields(line)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: err.Error()}
		}
		if len(toks) < 6 {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: "too few fields"}
		}
		entry, err := parseEpochNS(toks[0])
		if err != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: err.Error()}
		}
		ret, err2 := parseEpochNS(toks[1])
		if err2 != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: err2.Error()}
		}
		tid, err3 := strconv.Atoi(toks[2])
		if err3 != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: "bad tid"}
		}
		rec := &Record{TID: tid, Call: toks[3]}
		if rec.Ret, err = strconv.ParseInt(toks[4], 0, 64); err != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: "bad ret"}
		}
		errno, err4 := strconv.Atoi(toks[5])
		if err4 != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: "bad errno"}
		}
		if errno != 0 {
			rec.Err = vfs.Errno(errno).String()
			rec.Ret = -1
		}
		if base < 0 {
			base = entry
		}
		rec.Start = durationFromNS(entry - base)
		rec.End = durationFromNS(ret - base)
		if ok, err := assignIBenchArgs(rec, toks[6:]); err != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: err.Error()}
		} else if !ok {
			continue
		}
		tr.Records = append(tr.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	tr.Renumber()
	return tr, nil
}

func durationFromNS(ns int64) time.Duration { return time.Duration(ns) }

// assignIBenchArgs maps the call-specific argument list onto rec; the
// first result is false for calls the model does not handle.
func assignIBenchArgs(rec *Record, args []string) (bool, error) {
	q := func(i int) (string, error) {
		if i >= len(args) {
			return "", fmt.Errorf("%s: missing arg %d", rec.Call, i)
		}
		s, err := strconv.Unquote(args[i])
		if err != nil {
			return "", fmt.Errorf("%s: bad quoted arg %d", rec.Call, i)
		}
		return s, nil
	}
	n := func(i int) int64 {
		if i >= len(args) {
			return 0
		}
		v, _ := strconv.ParseInt(args[i], 0, 64)
		return v
	}
	var err error
	switch rec.Call {
	case "open", "open64", "creat", "guarded_open_np":
		if rec.Call == "guarded_open_np" {
			rec.Call = "open"
		}
		if rec.Path, err = q(0); err != nil {
			return false, err
		}
		rec.Flags = OpenFlag(n(1))
		rec.Mode = uint32(n(2))
		if rec.Ret > 0 {
			rec.FD = rec.Ret
		}
	case "close", "fsync", "fdatasync", "fstat", "fstat64", "fchdir", "fstatfs",
		"flistxattr", "getdirentries", "getdirentries64", "getdirentriesattr":
		rec.FD = n(0)
		if strings.HasPrefix(rec.Call, "getdirentries") {
			rec.Size = rec.Ret
		}
	case "read", "write":
		rec.FD = n(0)
		rec.Size = n(1)
	case "pread", "pwrite":
		rec.FD = n(0)
		rec.Size = n(1)
		rec.Offset = n(2)
	case "lseek":
		rec.FD = n(0)
		rec.Offset = n(1)
		rec.Whence = int(n(2))
	case "stat", "stat64", "lstat", "lstat64", "access", "readlink", "statfs",
		"rmdir", "unlink", "chdir", "getattrlist", "setattrlist", "searchfs",
		"fsctl", "vfsconf", "listxattr", "llistxattr", "pathconf":
		if rec.Call == "pathconf" {
			rec.Call = "access"
		}
		if rec.Path, err = q(0); err != nil {
			return false, err
		}
	case "mkdir", "chmod":
		if rec.Path, err = q(0); err != nil {
			return false, err
		}
		rec.Mode = uint32(n(1))
	case "rename", "link", "symlink", "exchangedata":
		if rec.Path, err = q(0); err != nil {
			return false, err
		}
		if rec.Path2, err = q(1); err != nil {
			return false, err
		}
	case "truncate":
		if rec.Path, err = q(0); err != nil {
			return false, err
		}
		rec.Size = n(1)
	case "ftruncate":
		rec.FD = n(0)
		rec.Size = n(1)
	case "dup":
		rec.FD = n(0)
	case "dup2":
		rec.FD = n(0)
		rec.FD2 = n(1)
	case "fcntl":
		rec.FD = n(0)
		op, err := q(1)
		if err != nil {
			return false, err
		}
		rec.Name = op
		rec.Offset = n(2)
	case "getxattr", "setxattr", "removexattr":
		if rec.Path, err = q(0); err != nil {
			return false, err
		}
		if rec.Name, err = q(1); err != nil {
			return false, err
		}
		if rec.Call == "setxattr" {
			rec.Size = n(2)
		}
	case "fgetxattr", "fsetxattr", "fremovexattr":
		rec.FD = n(0)
		if rec.Name, err = q(1); err != nil {
			return false, err
		}
		if rec.Call == "fsetxattr" {
			rec.Size = n(2)
		}
	case "aio_read", "aio_write":
		rec.FD = n(0)
		rec.Size = n(1)
		rec.Offset = n(2)
		if rec.Ret > 0 {
			rec.AIO = rec.Ret
		}
	case "aio_error", "aio_return", "aio_suspend":
		rec.AIO = n(0)
	case "mmap":
		fd := n(4)
		if fd < 0 {
			return false, nil
		}
		rec.FD = fd
		rec.Size = n(1)
		rec.Offset = n(5)
	case "munmap", "msync":
		rec.Offset = n(0)
		rec.Size = n(1)
	case "sync":
	default:
		return false, nil
	}
	return true, nil
}
