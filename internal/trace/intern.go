package trace

import "strings"

// Intern is a string-interning table: one durable copy per distinct
// string, shared by every record that mentions it. The strace lexer
// hands it sub-slices of the scanner's reusable buffer; interning is
// therefore also the copy-out point that breaks aliasing — a string
// returned by Str never references a transient buffer, whatever the
// argument aliased (see DESIGN.md "Trace ingest" for the contract).
//
// The table also caches composite open-flag sets ("O_WRONLY|O_CREAT"),
// so a flag combination is scanned once per trace rather than once per
// call.
//
// An Intern is not safe for concurrent use; the sharded parser gives
// each shard its own table and unions them during the merge.
type Intern struct {
	strs  map[string]string
	flags map[string]OpenFlag
}

// NewIntern returns an empty interning table.
func NewIntern() *Intern {
	return &Intern{
		strs:  make(map[string]string),
		flags: make(map[string]OpenFlag),
	}
}

// Str returns the durable interned copy of s, copying it into the table
// on first sight. The argument may alias a reused buffer; the result
// never does.
func (t *Intern) Str(s string) string {
	if s == "" {
		return ""
	}
	if v, ok := t.strs[s]; ok {
		return v
	}
	v := strings.Clone(s)
	t.strs[v] = v
	return v
}

// str is Str with a nil-tolerant receiver: a nil table is the identity,
// used by the reference parser, whose strings are already durable.
func (t *Intern) str(s string) string {
	if t == nil {
		return s
	}
	return t.Str(s)
}

// Has reports whether s is already interned. Tests use it to assert
// sharing invariants.
func (t *Intern) Has(s string) bool {
	_, ok := t.strs[s]
	return ok
}

// Len reports the number of distinct strings in the table.
func (t *Intern) Len() int { return len(t.strs) }

// AddAll merges src's entries into t. Existing entries win, so strings
// already shared by t's records keep their backing storage; new entries
// reuse src's backing storage rather than re-copying. A nil src is a
// no-op.
func (t *Intern) AddAll(src *Intern) {
	if src == nil {
		return
	}
	for k, v := range src.strs {
		if _, ok := t.strs[k]; !ok {
			t.strs[k] = v
		}
	}
	for k, v := range src.flags {
		if _, ok := t.flags[k]; !ok {
			t.flags[k] = v
		}
	}
}

// openFlags parses a rendered flag set, answering repeats from the
// composite cache. The nil receiver parses without caching (reference
// parser).
func (t *Intern) openFlags(s string) OpenFlag {
	if t == nil {
		return parseOpenFlags(s)
	}
	if f, ok := t.flags[s]; ok {
		return f
	}
	f := parseOpenFlags(s)
	t.flags[strings.Clone(s)] = f
	return f
}
