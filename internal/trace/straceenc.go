package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// straceEpochBase is the epoch second the first record is pinned to
// when a trace is rendered back to strace text. Any fixed value works —
// the parser rebases against the first timestamp — so a recognizably
// fake-but-plausible one is used.
const straceEpochBase int64 = 1700000000 * int64(time.Second)

// EncodeStrace renders the trace as `strace -f -ttt -T` text that
// ParseStrace (and parseStraceReference) accept. It is the source of
// synthetic strace corpora: tracegen uses it for `-format strace`, and
// the ingest CI lane and parser benchmarks feed its output to both
// parsers.
//
// Timestamps are written with nanosecond precision so the re-parsed
// Start times match exactly. A record whose [Start, End) window
// contains another record's start is split into an `<unfinished ...>` /
// `<... resumed>` pair, the way strace renders calls that were
// interrupted by another thread's output — this is what exercises the
// parsers' pending-call machinery on generated corpora. Records of one
// TID must not overlap each other (true of any trace that came from a
// parser), or the per-TID resumption pairing is ambiguous.
//
// Calls outside the model's syscall set are rendered as `name()`, which
// parsers skip; re-parsing such a trace drops those records.
func EncodeStrace(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	type line struct {
		at   time.Duration
		kind int // 0 = resumed (ends sort first at equal times), 1 = start/full
		seq  int
		rec  *Record
	}
	recs := tr.Records
	var lines []line
	split := make(map[int]bool)
	// Sorted starts let the split check binary-search instead of
	// scanning all records per record.
	starts := make([]time.Duration, 0, len(recs))
	for _, r := range recs {
		starts = append(starts, r.Start)
	}
	sort.Slice(starts, func(a, b int) bool { return starts[a] < starts[b] })
	for i, r := range recs {
		// Split if any start falls strictly inside (Start, End).
		j := sort.Search(len(starts), func(k int) bool { return starts[k] > r.Start })
		if j < len(starts) && starts[j] < r.End {
			split[i] = true
			lines = append(lines, line{r.Start, 1, i, r}, line{r.End, 0, i, r})
		} else {
			lines = append(lines, line{r.Start, 1, i, r})
		}
	}
	sort.Slice(lines, func(a, b int) bool {
		la, lb := lines[a], lines[b]
		if la.at != lb.at {
			return la.at < lb.at
		}
		if la.kind != lb.kind {
			return la.kind < lb.kind
		}
		return la.seq < lb.seq
	})
	for _, l := range lines {
		r := l.rec
		ts := straceEpochBase + int64(l.at)
		fmt.Fprintf(bw, "%d %d.%09d ", r.TID, ts/int64(time.Second), ts%int64(time.Second))
		if l.kind == 0 {
			fmt.Fprintf(bw, "<... %s resumed>) ", straceCallName(r))
			writeStraceResult(bw, r)
			bw.WriteByte('\n')
			continue
		}
		fmt.Fprintf(bw, "%s(", straceCallName(r))
		writeStraceArgs(bw, r)
		if split[l.seq] {
			bw.WriteString(" <unfinished ...>\n")
			continue
		}
		bw.WriteString(") ")
		writeStraceResult(bw, r)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// straceCallName maps a record's canonical call name back to a spelling
// the parser's case list accepts ("fadvise" is only parsed from its
// fadvise64/posix_fadvise spellings).
func straceCallName(r *Record) string {
	if r.Call == "fadvise" {
		return "fadvise64"
	}
	return r.Call
}

// writeStraceResult renders "= ret [ERR (desc)] <dur>".
func writeStraceResult(w *bufio.Writer, r *Record) {
	fmt.Fprintf(w, "= %d", r.Ret)
	if r.Err != "" && r.Ret == -1 {
		fmt.Fprintf(w, " %s (replayed error)", r.Err)
	}
	d := r.End - r.Start
	if d < 0 {
		d = 0
	}
	fmt.Fprintf(w, " <%s>", straceDur(d))
}

// straceDur renders a duration as the parser reads it back exactly. The
// parser (matching the original) computes time.Duration(ParseFloat(s) *
// 1e9), which truncates — "0.000498000" comes back as 497999ns — so a
// naive rendering is not idempotent. Search the neighbouring decimal
// strings for one whose float truncation lands on d.
func straceDur(d time.Duration) string {
	render := func(v int64) string {
		return fmt.Sprintf("%d.%09d", v/int64(time.Second), v%int64(time.Second))
	}
	for delta := int64(0); delta < 1024; delta++ {
		for _, v := range [2]int64{int64(d) + delta, int64(d) - delta} {
			if v < 0 {
				continue
			}
			s := render(v)
			secs, _ := strconv.ParseFloat(s, 64)
			if time.Duration(secs*float64(time.Second)) == d {
				return s
			}
			if delta == 0 {
				break
			}
		}
	}
	return render(int64(d))
}

// writeStraceArgs renders the argument list for each supported call,
// inverting assignStraceArgs' positional mapping.
func writeStraceArgs(w *bufio.Writer, r *Record) {
	switch r.Call {
	case "open", "open64":
		fmt.Fprintf(w, "%s, %s, %#o", strconv.Quote(r.Path), r.Flags, r.Mode)
	case "openat":
		fmt.Fprintf(w, "AT_FDCWD, %s, %s, %#o", strconv.Quote(r.Path), r.Flags, r.Mode)
	case "creat":
		fmt.Fprintf(w, "%s, %#o", strconv.Quote(r.Path), r.Mode)
	case "close", "fsync", "fdatasync", "fstat", "fstat64", "fchdir", "fstatfs", "flistxattr", "dup":
		fmt.Fprintf(w, "%d", r.FD)
	case "read", "write":
		fmt.Fprintf(w, "%d, \"\"..., %d", r.FD, r.Size)
	case "pread", "pread64", "pwrite", "pwrite64":
		fmt.Fprintf(w, "%d, \"\"..., %d, %d", r.FD, r.Size, r.Offset)
	case "lseek", "_llseek", "llseek":
		whence := "SEEK_SET"
		switch r.Whence {
		case 1:
			whence = "SEEK_CUR"
		case 2:
			whence = "SEEK_END"
		}
		fmt.Fprintf(w, "%d, %d, %s", r.FD, r.Offset, whence)
	case "stat", "stat64", "lstat", "lstat64", "access", "readlink", "statfs", "statfs64",
		"rmdir", "unlink", "chdir", "listxattr", "llistxattr":
		w.WriteString(strconv.Quote(r.Path))
	case "unlinkat":
		fmt.Fprintf(w, "AT_FDCWD, %s, 0", strconv.Quote(r.Path))
	case "mkdir", "chmod":
		fmt.Fprintf(w, "%s, %#o", strconv.Quote(r.Path), r.Mode)
	case "rename", "link", "symlink":
		fmt.Fprintf(w, "%s, %s", strconv.Quote(r.Path), strconv.Quote(r.Path2))
	case "renameat", "renameat2", "linkat", "symlinkat":
		fmt.Fprintf(w, "AT_FDCWD, %s, AT_FDCWD, %s", strconv.Quote(r.Path), strconv.Quote(r.Path2))
	case "truncate":
		fmt.Fprintf(w, "%s, %d", strconv.Quote(r.Path), r.Size)
	case "ftruncate", "ftruncate64":
		fmt.Fprintf(w, "%d, %d", r.FD, r.Size)
	case "dup2", "dup3":
		fmt.Fprintf(w, "%d, %d", r.FD, r.FD2)
	case "fcntl", "fcntl64":
		fmt.Fprintf(w, "%d, %s", r.FD, r.Name)
		if r.Offset != 0 {
			fmt.Fprintf(w, ", %d", r.Offset)
		}
	case "getdents", "getdents64", "getdirentries":
		fmt.Fprintf(w, "%d", r.FD)
	case "getxattr", "lgetxattr", "removexattr", "lremovexattr":
		fmt.Fprintf(w, "%s, %s", strconv.Quote(r.Path), strconv.Quote(r.Name))
	case "setxattr", "lsetxattr":
		fmt.Fprintf(w, "%s, %s, \"\"..., %d, 0", strconv.Quote(r.Path), strconv.Quote(r.Name), r.Size)
	case "fgetxattr", "fremovexattr":
		fmt.Fprintf(w, "%d, %s", r.FD, strconv.Quote(r.Name))
	case "fsetxattr":
		fmt.Fprintf(w, "%d, %s, \"\"..., %d, 0", r.FD, strconv.Quote(r.Name), r.Size)
	case "fadvise", "fadvise64", "posix_fadvise":
		fmt.Fprintf(w, "%d, %d, %d, %s", r.FD, r.Offset, r.Size, r.Name)
	case "fallocate":
		fmt.Fprintf(w, "%d, 0, %d, %d", r.FD, r.Offset, r.Size)
	case "mmap", "mmap2":
		fmt.Fprintf(w, "NULL, %d, PROT_READ, MAP_SHARED, %d, %d", r.Size, r.FD, r.Offset)
	case "munmap", "msync":
		fmt.Fprintf(w, "%d, %d", r.Offset, r.Size)
	case "sync":
	default:
		// Unsupported by the model; parsers will skip the line.
	}
}
