package trace

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
	"unsafe"
)

// The fast path's contract is exact behavioural equality with
// parseStraceReference — records, platform, rebasing, and errors. These
// tests enforce it over hand-written fixtures, generated corpora, and
// (in fuzz_test.go) fuzzed inputs, for the sequential fast path, the
// streaming path, and every shard count.

// straceGoldenInputs returns named fixture inputs covering the parser's
// branch points.
func straceGoldenInputs() map[string]string {
	long := strings.Repeat("x", 80<<10) // past bufio.Scanner's 64 KiB default
	return map[string]string{
		"sample":    sampleStrace,
		"empty":     "",
		"blank":     "\n\n  \n",
		"noPID":     "1679588291.000100 open(\"/f\", O_RDONLY) = 3 <0.000020>\n1679588291.000200 close(3) = 0 <0.000001>\n",
		"pidPrefix": "[pid 7] 1679588291.000100 open(\"/f\", O_RDONLY) = 3 <0.000020>\n",
		// The reference rewrites the first "] " anywhere in the line, even
		// inside an argument; the fast path must reproduce the quirk.
		"bracketQuirk": "1001 1679588291.000100 open(\"/weird] name\", O_RDONLY) = 3 <0.000020>\n",
		"enoent":       "1001 1679588291.000100 stat(\"/missing\", 0x7ffd) = -1 ENOENT (No such file or directory) <0.000005>\n",
		"longLine": "1001 1679588291.000100 write(3, \"" + long + "\", 81920) = 81920 <0.000500>\n" +
			"1001 1679588291.000700 close(3) = 0 <0.000001>\n",
		"unfinished": "1 1.0 write(4, \"x\", 10 <unfinished ...>\n" +
			"2 1.1 open(\"/f\", O_RDONLY) = 5 <0.1>\n" +
			"1 1.2 <... write resumed>) = 10 <0.2>\n",
		"orphanResume":     "1 1.0 <... write resumed>) = 10 <0.2>\n",
		"duplUnfinished":   "1 1.0 write(4, \"a\", 1 <unfinished ...>\n1 1.1 write(5, \"b\", 2 <unfinished ...>\n1 1.2 <... write resumed>) = 2 <0.1>\n",
		"danglingPending":  "1 1.0 write(4, \"a\", 1 <unfinished ...>\n1 1.1 close(4) = 0 <0.1>\n",
		"crlf":             "1001 1679588291.000100 open(\"/f\", O_RDONLY) = 3 <0.000020>\r\n1001 1679588291.000200 close(3) = 0 <0.000001>\r\n",
		"noTrailingNL":     "1001 1679588291.000100 open(\"/f\", O_RDONLY) = 3 <0.000020>",
		"exitNotices":      "+++ exited with 0 +++\n--- SIGCHLD {si_signo=SIGCHLD} ---\n1 1.0 sync() = 0 <0.1>\n",
		"skippedFirstTS":   "1 1.0 getuid() = 1000 <0.1>\n1 2.0 open(\"/f\", O_RDONLY) = 3 <0.1>\n",
		"questionRet":      "1 1.0 close(3) = ? <0.1>\n",
		"hexRet":           "1 1.0 mmap(NULL, 8192, PROT_READ, MAP_SHARED, 6, 0) = 0x7f1200000000 <0.000007>\n",
		"fdAnnotation":     "1 1.0 close(3</etc/fstab>) = 0 <0.1>\n",
		"badTimestamp":     "1001 notatime open(\"/f\", O_RDONLY) = 3\n",
		"unbalancedParen":  "1001 167.5 open(\"/f\", O_RDONLY = 3\n",
		"badReturn":        "1001 167.5 open(\"/f\", O_RDONLY) = zz\n",
		"noParen":          "1001 167.5 exit_group\n",
		"malformedResumed": "1 1.0 write(4, \"x\", 10 <unfinished ...>\n1 1.1 <... write res>) = 10 <0.1>\n",
		"errorAfterGood":   "1 1.0 open(\"/f\", O_RDONLY) = 3 <0.1>\n1 1.1 open(\"/g\", O_RDONLY) = zz\n1 1.2 close(3) = 0 <0.1>\n",
	}
}

// genStraceCorpus renders a synthetic multi-threaded workload as strace
// text: per-thread open/read/write/close cycles over a shared pool of
// paths, with overlapping call windows so EncodeStrace emits
// unfinished/resumed pairs (which the line splitter then scatters
// across shard boundaries).
func genStraceCorpus(t testing.TB, records int, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Platform: "linux"}
	paths := make([]string, 40)
	for i := range paths {
		paths[i] = fmt.Sprintf("/data/dir%d/file%d.db", i%5, i)
	}
	now := make(map[int]time.Duration) // per-TID clock
	for len(tr.Records) < records {
		tid := 1 + rng.Intn(8)
		at := now[tid]
		dur := time.Duration(1+rng.Intn(2000)) * time.Microsecond
		rec := &Record{TID: tid, Start: at, End: at + dur}
		switch rng.Intn(6) {
		case 0:
			rec.Call, rec.Path, rec.Flags, rec.Mode = "open", paths[rng.Intn(len(paths))], OWronly|OCreat, 0o644
			rec.Ret = int64(3 + rng.Intn(20))
			rec.FD = rec.Ret
		case 1:
			rec.Call, rec.FD, rec.Size = "read", int64(3+rng.Intn(20)), int64(4096)
			rec.Ret = 4096
		case 2:
			rec.Call, rec.FD, rec.Size, rec.Offset = "pwrite64", int64(3+rng.Intn(20)), 512, int64(rng.Intn(1<<20))
			rec.Ret = 512
		case 3:
			rec.Call, rec.Path = "stat", paths[rng.Intn(len(paths))]
			if rng.Intn(3) == 0 {
				rec.Ret, rec.Err = -1, "ENOENT"
			}
		case 4:
			rec.Call, rec.FD = "close", int64(3+rng.Intn(20))
		case 5:
			rec.Call, rec.Path, rec.Path2 = "rename", paths[rng.Intn(len(paths))], paths[rng.Intn(len(paths))]
		}
		// A thread's calls are sequential (its next call starts after
		// this one ends), but the per-TID clocks drift independently, so
		// calls overlap freely across threads — that cross-thread overlap
		// is what makes EncodeStrace emit unfinished/resumed pairs.
		now[tid] = at + dur + time.Duration(rng.Intn(50))*time.Microsecond
		tr.Records = append(tr.Records, rec)
	}
	tr.Renumber()
	var buf bytes.Buffer
	if err := EncodeStrace(&buf, tr); err != nil {
		t.Fatalf("EncodeStrace: %v", err)
	}
	return buf.String()
}

// assertTraceEqual compares two parses field-for-field.
func assertTraceEqual(t *testing.T, label string, want, got *Trace) {
	t.Helper()
	if want.Platform != got.Platform {
		t.Fatalf("%s: platform %q != %q", label, got.Platform, want.Platform)
	}
	if len(want.Records) != len(got.Records) {
		t.Fatalf("%s: %d records, want %d", label, len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		if !reflect.DeepEqual(want.Records[i], got.Records[i]) {
			t.Fatalf("%s: record %d:\nwant %+v\ngot  %+v", label, i, want.Records[i], got.Records[i])
		}
	}
}

// assertErrEqual requires both parsers to fail identically.
func assertErrEqual(t *testing.T, label string, want, got error) {
	t.Helper()
	var wpe, gpe *ParseError
	if errors.As(want, &wpe) != errors.As(got, &gpe) {
		t.Fatalf("%s: error kinds differ: reference %v, got %v", label, want, got)
	}
	if wpe != nil {
		if wpe.Line != gpe.Line || wpe.Msg != gpe.Msg || wpe.Text != gpe.Text {
			t.Fatalf("%s: ParseError differs:\nreference %+v\ngot       %+v", label, wpe, gpe)
		}
	}
}

// assertParsersAgree runs every parser over the input and holds each to
// the reference's output.
func assertParsersAgree(t *testing.T, name, input string) {
	t.Helper()
	defer func(old int) { shardMinBytes = old }(shardMinBytes)
	shardMinBytes = 1 // force real sharding on small fixtures

	want, wantErr := parseStraceReference(strings.NewReader(input))
	check := func(label string, got *Trace, gotErr error) {
		t.Helper()
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s/%s: err = %v, reference err = %v", name, label, gotErr, wantErr)
		}
		if wantErr != nil {
			assertErrEqual(t, name+"/"+label, wantErr, gotErr)
			return
		}
		assertTraceEqual(t, name+"/"+label, want, got)
	}

	got, err := ParseStrace(strings.NewReader(input))
	check("fast", got, err)

	var streamed []*Record
	got, err = ParseStraceStream(strings.NewReader(input), 3, func(recs []*Record) error {
		streamed = append(streamed, recs...)
		return nil
	})
	check("stream", got, err)
	if err == nil && !reflect.DeepEqual(streamed, got.Records) {
		t.Fatalf("%s/stream: emitted batches differ from final records", name)
	}

	for _, n := range []int{1, 2, 3, 8} {
		got, err = ParseStraceSharded(strings.NewReader(input), n)
		check(fmt.Sprintf("sharded%d", n), got, err)
	}
}

func TestStraceGolden(t *testing.T) {
	for name, input := range straceGoldenInputs() {
		t.Run(name, func(t *testing.T) { assertParsersAgree(t, name, input) })
	}
}

func TestStraceGoldenGenerated(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		corpus := genStraceCorpus(t, 2000, seed)
		assertParsersAgree(t, fmt.Sprintf("gen%d", seed), corpus)
	}
}

func TestStraceGoldenOverLimit(t *testing.T) {
	defer func(old int) { straceMaxLine = old }(straceMaxLine)
	straceMaxLine = 4096
	in := "1001 1679588291.000100 open(\"/f\", O_RDONLY) = 3 <0.000020>\n" +
		"1001 1679588291.000200 write(3, \"" + strings.Repeat("y", 8192) + "\", 8192) = 8192 <0.000100>\n"
	assertParsersAgree(t, "overLimit", in)
}

// TestEncodeStraceRoundTrip checks the encoder against the parser: a
// synthetic trace rendered as strace text and re-parsed must come back
// record-for-record (Seq/TID/Call/Path/.../Start), with stitched
// unfinished/resumed pairs landing on their original timestamps.
func TestEncodeStraceRoundTrip(t *testing.T) {
	corpus := genStraceCorpus(t, 500, 7)
	tr, err := ParseStrace(strings.NewReader(corpus))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 500 {
		t.Fatalf("round trip kept %d of 500 records", len(tr.Records))
	}
	if !strings.Contains(corpus, "<unfinished ...>") {
		t.Fatal("corpus has no unfinished/resumed pairs; overlap generation broke")
	}
	var buf bytes.Buffer
	if err := EncodeStrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := ParseStrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertTraceEqual(t, "reencode", tr, tr2)
}

// stringData returns the backing-array pointer of a string, for
// asserting two strings share storage.
func stringData(s string) *byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.StringData(s)
}

// TestParseStraceInterning asserts the fast path's deduplication: every
// repeated path in a parsed trace is one allocation, and the trace
// carries the table.
func TestParseStraceInterning(t *testing.T) {
	in := "1 1.0 open(\"/shared/path\", O_RDONLY) = 3 <0.1>\n" +
		"1 1.1 stat(\"/shared/path\", 0x7ffd) = 0 <0.1>\n" +
		"2 1.2 unlink(\"/shared/path\") = 0 <0.1>\n"
	tr, err := ParseStrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 3 {
		t.Fatalf("records = %d", len(tr.Records))
	}
	p0 := stringData(tr.Records[0].Path)
	for i, r := range tr.Records {
		if stringData(r.Path) != p0 {
			t.Fatalf("record %d path not interned with record 0", i)
		}
	}
	if !tr.InternTable().Has("/shared/path") {
		t.Fatal("trace intern table missing the path")
	}
}

// TestMergeSharesInternedStorage asserts Merge's intern reuse: merged
// records keep their inputs' string backing, and the merged trace's
// table is the union of the inputs'.
func TestMergeSharesInternedStorage(t *testing.T) {
	a, err := ParseStrace(strings.NewReader("1 1.0 open(\"/a/path\", O_RDONLY) = 3 <0.1>\n"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseStrace(strings.NewReader("1 1.0 stat(\"/b/path\", 0x7ffd) = 0 <0.1>\n"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stringData(m.Records[0].Path), stringData(a.Records[0].Path); got != want {
		t.Fatal("merged record re-allocated input a's path")
	}
	if got, want := stringData(m.Records[1].Path), stringData(b.Records[0].Path); got != want {
		t.Fatal("merged record re-allocated input b's path")
	}
	tab := m.InternTable()
	if !tab.Has("/a/path") || !tab.Has("/b/path") {
		t.Fatal("merged intern table is not the union of the inputs'")
	}
}

// TestShardedSharesInterning asserts the sharded parse unions shard
// tables instead of dropping them.
func TestShardedSharesInterning(t *testing.T) {
	defer func(old int) { shardMinBytes = old }(shardMinBytes)
	shardMinBytes = 1
	var sb strings.Builder
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&sb, "1 %d.0 open(\"/common/file\", O_RDONLY) = 3 <0.1>\n", i+1)
	}
	tr, err := ParseStraceSharded(strings.NewReader(sb.String()), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.InternTable().Has("/common/file") {
		t.Fatal("sharded parse lost the intern table")
	}
}
