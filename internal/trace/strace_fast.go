package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
	"unsafe"
)

// This file is the zero-copy strace lexer behind ParseStrace. The
// ingredients, and the aliasing contract between them:
//
//   - Lines are lexed as sub-slices of the bufio.Scanner's reusable
//     buffer, viewed as strings via bytesView without copying. Every
//     view dies when the line is done; the only strings that outlive a
//     line are (a) ParseError.Text, which is cloned, and (b) record
//     strings, which pass through the Intern table — the copy-out
//     point — so no Record ever references the scanner buffer.
//   - Records are carved out of slab chunks ([]Record) rather than
//     allocated one by one; Trace.Records holds pointers into the
//     slabs, so the public shape ([]*Record) is unchanged.
//   - `unfinished ... resumed` stitching uses a small per-TID map of
//     open calls whose text buffers are pooled and reused.
//
// The scalar parsers (parseEpochNS, strconv.ParseInt/ParseFloat over
// views) are shared with or copied verbatim from the reference parser;
// fuzz_test.go holds the fast path to the reference as oracle.

// bytesView returns a string view of b without copying. The view
// aliases b and must not be retained past b's lifetime — see the
// contract above.
func bytesView(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// atoiExact mirrors strconv.Atoi's accept set (optional sign, decimal
// digits, full int range) without allocating a NumError on failure —
// the header probe runs it on every line of a no-pid trace, where the
// first token is a timestamp and the failure path is the common one.
func atoiExact(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	neg := false
	i := 0
	switch s[0] {
	case '-':
		neg = true
		i = 1
	case '+':
		i = 1
	}
	if i == len(s) {
		return 0, false
	}
	// Accumulate negative (MinInt has no positive counterpart).
	const cutoff = math.MinInt / 10
	n := 0
	for ; i < len(s); i++ {
		c := s[i] - '0'
		if c > 9 {
			return 0, false
		}
		if n < cutoff {
			return 0, false
		}
		n = n*10 - int(c)
		if n > 0 {
			return 0, false
		}
	}
	if !neg {
		if n == math.MinInt {
			return 0, false
		}
		n = -n
	}
	return n, true
}

// parseInt64Exact mirrors strconv.ParseInt(s, 10, 64) — optional sign,
// decimal digits, full int64 range, no underscores — without the
// NumError allocation or the call overhead. Used for the timestamp
// fields, which dominate the header's cost.
func parseInt64Exact(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	if c := s[0]; c != '-' && c != '+' && len(s) <= 18 {
		// ≤ 18 digits cannot overflow int64: drop the cutoff checks
		// and batch 8 digits per step. This is every timestamp field.
		var n int64
		i := 0
		for ; i+8 <= len(s); i += 8 {
			d, ok := swarParse8(le64(s, i))
			if !ok {
				return 0, false
			}
			n = n*100000000 + int64(d)
		}
		for ; i < len(s); i++ {
			c := s[i] - '0'
			if c > 9 {
				return 0, false
			}
			n = n*10 + int64(c)
		}
		return n, true
	}
	neg := false
	i := 0
	switch s[0] {
	case '-':
		neg = true
		i = 1
	case '+':
		i = 1
	}
	if i == len(s) {
		return 0, false
	}
	// Accumulate negative (MinInt64 has no positive counterpart).
	const cutoff = math.MinInt64 / 10
	var n int64
	for ; i < len(s); i++ {
		c := s[i] - '0'
		if c > 9 {
			return 0, false
		}
		if n < cutoff {
			return 0, false
		}
		n = n*10 - int64(c)
		if n > 0 {
			return 0, false
		}
	}
	if !neg {
		if n == math.MinInt64 {
			return 0, false
		}
		n = -n
	}
	return n, true
}

// le64 loads 8 bytes of s at offset i as a little-endian word. The
// caller guarantees i+8 <= len(s).
func le64(s string, i int) uint64 {
	b := unsafe.Slice(unsafe.StringData(s), len(s))
	return binary.LittleEndian.Uint64(b[i : i+8])
}

// swarParse8 converts a little-endian word of 8 ASCII digits to its
// numeric value (s[0] most significant), rejecting any non-digit byte:
// the high-nibble test pins every byte to 0x30..0x3F, and the +6 carry
// test rejects 0x3A..0x3F. The multiply-shift cascade then combines
// adjacent digits pairwise (×10, ×100, ×10000).
func swarParse8(w uint64) (uint64, bool) {
	if w&0xF0F0F0F0F0F0F0F0 != 0x3030303030303030 {
		return 0, false
	}
	d := w & 0x0F0F0F0F0F0F0F0F
	if (d+0x0606060606060606)&0xF0F0F0F0F0F0F0F0 != 0 {
		return 0, false
	}
	d = (d * (1 + 10<<8)) >> 8 & 0x00FF00FF00FF00FF
	d = (d * (1 + 100<<16)) >> 16 & 0x0000FFFF0000FFFF
	d = (d * (1 + 10000<<32)) >> 32
	return d, true
}

// parseDigitsU64 converts an all-digit string (caller bounds the
// length so the value fits) to its numeric value.
func parseDigitsU64(s string) (uint64, bool) {
	var n uint64
	i := 0
	for ; i+8 <= len(s); i += 8 {
		d, ok := swarParse8(le64(s, i))
		if !ok {
			return 0, false
		}
		n = n*100000000 + d
	}
	for ; i < len(s); i++ {
		c := s[i] - '0'
		if c > 9 {
			return 0, false
		}
		n = n*10 + uint64(c)
	}
	return n, true
}

// pow10u holds 10^0..10^15 for scaling the integer part of a duration
// by its fraction width.
var pow10u = [16]uint64{
	1, 10, 100, 1000, 10000, 100000, 1000000, 10000000, 100000000,
	1000000000, 10000000000, 100000000000, 1000000000000,
	10000000000000, 100000000000000, 1000000000000000,
}

// parseEpochNSFast is parseEpochNS with the strconv calls replaced by
// parseInt64Exact. Same accept set, same error text, same overflow
// behaviour (ParseInt range errors become "bad timestamp").
func parseEpochNSFast(s string) (int64, error) {
	// Shape-specialized path for the dominant "SSSSSSSSSS.NNNNNNNNN"
	// epoch form: two SWAR blocks and three scalar digits, no cut. Any
	// validation failure falls through to the general path, and when
	// all 19 digit positions really are digits the first '.' is at
	// index 10, so the general path's cut would split identically.
	if len(s) == 20 && s[10] == '.' {
		hi, ok1 := swarParse8(le64(s, 0))
		lo, ok2 := swarParse8(le64(s, 11))
		d8, d9, d19 := s[8]-'0', s[9]-'0', s[19]-'0'
		if ok1 && ok2 && d8 <= 9 && d9 <= 9 && d19 <= 9 {
			sec := int64(hi*100 + uint64(d8)*10 + uint64(d9))
			frac := int64(lo*10 + uint64(d19))
			return sec*int64(time.Second) + frac, nil
		}
	}
	secS, fracS, _ := cutByteShort(s, '.')
	secs, ok := parseInt64Exact(secS)
	if !ok {
		return 0, fmt.Errorf("bad timestamp %q", s)
	}
	ns := secs * int64(time.Second)
	if fracS != "" {
		if len(fracS) > 9 {
			fracS = fracS[:9]
		}
		frac, ok := parseInt64Exact(fracS)
		if !ok {
			return 0, fmt.Errorf("bad timestamp %q", s)
		}
		for i := len(fracS); i < 9; i++ {
			frac *= 10
		}
		ns += frac
	}
	return ns, nil
}

// pow10f holds the exactly-representable powers of ten (1e0..1e22 are
// all exact in float64), the same constants strconv's exact conversion
// divides by.
var pow10f = [23]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// parseStraceDur computes time.Duration(ParseFloat(s) *
// float64(time.Second)) — the reference parser's duration formula,
// truncation included — without ParseFloat for the common "sec.frac"
// shape. When both the mantissa (< 2^52) and the power of ten (≤ 1e22)
// are exactly representable, float64(mant)/pow10 is the correctly
// rounded value, identical to ParseFloat's; anything else (signs,
// exponents, hex floats, ≥ 16 significant digits) falls back.
func parseStraceDur(s string) time.Duration {
	intS, fracS, _ := cutByteShort(s, '.')
	// ≤ 15 significant digits keeps the combined mantissa under 2^52;
	// anything larger (or non-digit) is handed to ParseFloat, which
	// computes the identical value more slowly.
	digits := len(intS) + len(fracS)
	if digits == 0 || digits > 15 {
		return parseStraceDurSlow(s)
	}
	iv, ok := parseDigitsU64(intS)
	if !ok {
		return parseStraceDurSlow(s)
	}
	fv, ok := parseDigitsU64(fracS)
	if !ok {
		return parseStraceDurSlow(s)
	}
	fd := len(fracS)
	f := float64(iv*pow10u[fd] + fv)
	if fd > 0 {
		f /= pow10f[fd]
	}
	return time.Duration(f * float64(time.Second))
}

func parseStraceDurSlow(s string) time.Duration {
	if secs, err := strconv.ParseFloat(s, 64); err == nil {
		return time.Duration(secs * float64(time.Second))
	}
	return 0
}

// parseRetTok handles the common decimal return token without
// strconv.ParseInt's base-0 machinery. Base 0 treats a leading zero as
// an octal (or 0x/0b/0o) prefix and accepts underscores, so only plain
// decimals — "0", or [+-] followed by a nonzero leading digit — take
// the fast path.
func parseRetTok(s string) (int64, bool) {
	t := s
	if len(t) > 0 && (t[0] == '-' || t[0] == '+') {
		t = t[1:]
	}
	if len(t) == 0 || (t[0] == '0' && len(t) > 1) {
		return 0, false
	}
	return parseInt64Exact(s)
}

// trimFast is strings.TrimSpace for the overwhelmingly common case of
// nothing to trim: both edge bytes plain printable ASCII. That check
// inlines at the call sites; anything else (actual padding, other
// whitespace, or a non-ASCII edge byte that could start a Unicode
// space) takes the slow path, whose result is always identical to
// TrimSpace.
func trimFast(s string) string {
	// b-0x21 < 0x5F ⇔ b in [0x21, 0x7F]: printable ASCII, never
	// trimmed. Folding each range test into one compare keeps the
	// function inside the inlining budget.
	if len(s) > 0 && s[0]-0x21 < 0x5F && s[len(s)-1]-0x21 < 0x5F {
		return s
	}
	return trimFastSlow(s)
}

func trimFastSlow(s string) string {
	for len(s) > 0 && s[0] == ' ' {
		s = s[1:]
	}
	for len(s) > 0 && s[len(s)-1] == ' ' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 {
		if c := s[0]; c >= 0x80 || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r' {
			return strings.TrimSpace(s)
		}
		if c := s[len(s)-1]; c >= 0x80 || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r' {
			return strings.TrimSpace(s)
		}
	}
	return s
}

// recordChunk is the slab granularity: one allocation per this many
// records.
const recordChunk = 1024

// pendingCall is an open `<unfinished ...>` call awaiting its resumed
// half. Buffers are pooled on the parser's free list.
type pendingCall struct {
	tid int
	ts  int64
	buf []byte
}

// straceParser holds the per-parse state of the fast path. It is used
// in two bases: the sequential parser rebases timestamps as it goes
// (rebase=true), while shards parse with absolute timestamps and the
// merge rebases afterwards (see shard.go).
// pendingSlot is one entry of the open-call table. tid < 0 marks a
// tombstone whose slot (but not pc, which moves to the free list) can
// be reused.
type pendingSlot struct {
	tid int
	pc  *pendingCall
}

type straceParser struct {
	tr      *Trace
	tab     *Intern
	pending []pendingSlot // open calls, at most one per TID; linear scan beats a map at trace thread counts
	live    int           // non-tombstone entries of pending
	free    []*pendingCall
	firstTS int64
	rebase  bool

	chunk []Record
	used  int  // slots of chunk handed out
	dirty bool // chunk[used] holds an abandoned record and needs zeroing
	args  []string
	patch []byte // scratch for the "] " header rewrite
}

func newStraceParser(rebase bool) *straceParser {
	tab := NewIntern()
	return &straceParser{
		tr:      &Trace{Platform: "linux", intern: tab},
		tab:     tab,
		firstTS: -1,
		rebase:  rebase,
	}
}

// takePending removes and returns TID's open call, or nil. Slots are
// tombstoned rather than compacted, so a take is one int store — no
// pointer shuffling, no write barriers.
func (p *straceParser) takePending(tid int) *pendingCall {
	if p.live == 0 {
		return nil
	}
	for i := range p.pending {
		if p.pending[i].tid == tid {
			pc := p.pending[i].pc
			p.pending[i].tid = -1
			p.live--
			if p.live == 0 {
				p.pending = p.pending[:0] // reset so put/take scans stay short
			}
			return pc
		}
	}
	return nil
}

// putPending registers an open call, replacing (and recycling) any
// earlier one on the same TID — the sequential parser's overwrite rule.
// Tombstoned slots are reused before the slice grows.
func (p *straceParser) putPending(pc *pendingCall) {
	dead := -1
	for i := range p.pending {
		if p.pending[i].tid == pc.tid {
			p.recycle(p.pending[i].pc)
			p.pending[i].pc = pc
			return
		}
		if p.pending[i].tid < 0 && dead < 0 {
			dead = i
		}
	}
	p.live++
	if dead >= 0 {
		p.pending[dead] = pendingSlot{pc.tid, pc}
		return
	}
	p.pending = append(p.pending, pendingSlot{pc.tid, pc})
}

// base is the value subtracted from epoch timestamps when a record is
// materialized.
func (p *straceParser) base() int64 {
	if p.rebase {
		return p.firstTS
	}
	return 0
}

// alloc returns the next slab slot without committing it. finish
// builds the record in place — no stack copy, and the write barriers
// cover only the pointer fields actually assigned — then either
// commits the slot (p.used++) or abandons it by leaving p.dirty set,
// in which case the next alloc re-zeroes it.
func (p *straceParser) alloc() *Record {
	if p.used == len(p.chunk) {
		p.chunk = make([]Record, recordChunk)
		p.used = 0
		p.dirty = false
	}
	r := &p.chunk[p.used]
	if p.dirty {
		*r = Record{}
		p.dirty = false
	}
	return r
}

func (p *straceParser) newPending(tid int, ts int64) *pendingCall {
	if n := len(p.free); n > 0 {
		pc := p.free[n-1]
		p.free = p.free[:n-1]
		pc.tid, pc.ts = tid, ts
		pc.buf = pc.buf[:0]
		return pc
	}
	return &pendingCall{tid: tid, ts: ts}
}

func (p *straceParser) recycle(pc *pendingCall) {
	if len(p.free) < 64 {
		p.free = append(p.free, pc)
	}
}

// header mirrors straceHeader byte for byte, including the historical
// quirk that the first "] " anywhere in the line is rewritten to " "
// (the reference used strings.Replace(line, "] ", " ", 1) to strip
// "[pid N] " prefixes). The rewrite happens into a reused scratch
// buffer, so the returned rest may alias p.patch until the next line.
func (p *straceParser) header(line string) (tid int, ts int64, rest string, err error) {
	line = strings.TrimPrefix(line, "[pid ")
	// Gate the two-byte search behind a bare IndexByte: almost no line
	// contains ']' at all, and the first "] " can only start at or
	// after the first ']'.
	if j := strings.IndexByte(line, ']'); j >= 0 {
		if i := strings.Index(line[j:], "] "); i >= 0 {
			i += j
			p.patch = append(p.patch[:0], line[:i]...)
			p.patch = append(p.patch, ' ')
			p.patch = append(p.patch, line[i+2:]...)
			line = bytesView(p.patch)
		}
	}
	f1, r1, _ := cutByteShort(line, ' ')
	if t, ok := atoiExact(f1); ok {
		tid = t
		line = trimFast(r1)
		f1, r1, _ = cutByteShort(line, ' ')
	} else {
		tid = 1
	}
	ts, err = parseEpochNSFast(f1)
	if err != nil {
		return 0, 0, "", err
	}
	return tid, ts, trimFast(r1), nil
}

// skipLine reports whether a trimmed line carries no call: blank lines
// and strace's "+++ exited +++" / "--- SIGxxx ---" notices.
func skipLine(line string) bool {
	if line == "" {
		return true
	}
	if c := line[0]; c != '+' && c != '-' {
		return false
	}
	return strings.HasPrefix(line, "+++") || strings.HasPrefix(line, "---")
}

// line processes one raw input line. All errors are *ParseError with
// durable Text.
func (p *straceParser) line(raw string, lineNo int) error {
	line := trimFast(raw)
	if skipLine(line) {
		return nil
	}
	tid, ts, rest, err := p.header(line)
	if err != nil {
		return &ParseError{Line: lineNo, Text: strings.Clone(line), Msg: err.Error()}
	}
	if p.firstTS < 0 {
		p.firstTS = ts
	}
	if strings.HasPrefix(rest, "<...") {
		pc := p.takePending(tid)
		if pc == nil {
			return nil // resumed call we never saw the start of
		}
		idx := strings.Index(rest, "resumed>")
		if idx < 0 {
			return &ParseError{Line: lineNo, Text: strings.Clone(line), Msg: "malformed resumed line"}
		}
		pc.buf = append(pc.buf, rest[idx+len("resumed>"):]...)
		if err := p.finish(pc.tid, pc.ts, bytesView(pc.buf)); err != nil {
			return &ParseError{Line: lineNo, Text: strings.Clone(line), Msg: err.Error()}
		}
		p.recycle(pc)
		return nil
	}
	if strings.HasSuffix(rest, "<unfinished ...>") {
		pc := p.newPending(tid, ts)
		pc.buf = append(pc.buf, strings.TrimSuffix(rest, "<unfinished ...>")...)
		p.putPending(pc)
		return nil
	}
	if err := p.finish(tid, ts, rest); err != nil {
		return &ParseError{Line: lineNo, Text: strings.Clone(line), Msg: err.Error()}
	}
	return nil
}

// cutByteShort is strings.Cut for a single-byte separator expected
// within the first handful of bytes (the space after a TID, the dot in
// a timestamp, the call's opening paren). At those distances a plain
// loop beats IndexByte's vector setup.
func cutByteShort(s string, sep byte) (before, after string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

var errNoParen = errors.New("no opening paren")
var errUnbalanced = errors.New("unbalanced parens")

// internCall returns the canonical static string for a known syscall
// name, or "" for names outside assignStraceArgs' case list. Every
// returned literal shares one backing array per spelling, so records
// stay interned without a map lookup.
func internCall(name string) string {
	switch name {
	case "open":
		return "open"
	case "open64":
		return "open64"
	case "openat":
		return "openat"
	case "creat":
		return "creat"
	case "close":
		return "close"
	case "fsync":
		return "fsync"
	case "fdatasync":
		return "fdatasync"
	case "fstat":
		return "fstat"
	case "fstat64":
		return "fstat64"
	case "fchdir":
		return "fchdir"
	case "fstatfs":
		return "fstatfs"
	case "flistxattr":
		return "flistxattr"
	case "read":
		return "read"
	case "write":
		return "write"
	case "pread":
		return "pread"
	case "pread64":
		return "pread64"
	case "pwrite":
		return "pwrite"
	case "pwrite64":
		return "pwrite64"
	case "lseek":
		return "lseek"
	case "_llseek":
		return "_llseek"
	case "llseek":
		return "llseek"
	case "stat":
		return "stat"
	case "stat64":
		return "stat64"
	case "lstat":
		return "lstat"
	case "lstat64":
		return "lstat64"
	case "access":
		return "access"
	case "readlink":
		return "readlink"
	case "statfs":
		return "statfs"
	case "statfs64":
		return "statfs64"
	case "rmdir":
		return "rmdir"
	case "unlink":
		return "unlink"
	case "chdir":
		return "chdir"
	case "listxattr":
		return "listxattr"
	case "llistxattr":
		return "llistxattr"
	case "unlinkat":
		return "unlinkat"
	case "mkdir":
		return "mkdir"
	case "chmod":
		return "chmod"
	case "rename":
		return "rename"
	case "link":
		return "link"
	case "symlink":
		return "symlink"
	case "renameat":
		return "renameat"
	case "renameat2":
		return "renameat2"
	case "linkat":
		return "linkat"
	case "symlinkat":
		return "symlinkat"
	case "truncate":
		return "truncate"
	case "ftruncate":
		return "ftruncate"
	case "ftruncate64":
		return "ftruncate64"
	case "dup":
		return "dup"
	case "dup2":
		return "dup2"
	case "dup3":
		return "dup3"
	case "fcntl":
		return "fcntl"
	case "fcntl64":
		return "fcntl64"
	case "getdents":
		return "getdents"
	case "getdents64":
		return "getdents64"
	case "getdirentries":
		return "getdirentries"
	case "getxattr":
		return "getxattr"
	case "lgetxattr":
		return "lgetxattr"
	case "setxattr":
		return "setxattr"
	case "lsetxattr":
		return "lsetxattr"
	case "removexattr":
		return "removexattr"
	case "lremovexattr":
		return "lremovexattr"
	case "fgetxattr":
		return "fgetxattr"
	case "fsetxattr":
		return "fsetxattr"
	case "fremovexattr":
		return "fremovexattr"
	case "fadvise64":
		return "fadvise64"
	case "posix_fadvise":
		return "posix_fadvise"
	case "fallocate":
		return "fallocate"
	case "mmap":
		return "mmap"
	case "mmap2":
		return "mmap2"
	case "munmap":
		return "munmap"
	case "msync":
		return "msync"
	case "sync":
		return "sync"
	}
	return ""
}

// Byte classes for finish's fused paren-match + arg-split scan. A
// backslash is only meaningful inside quotes (the unquoted switch has
// no clsEsc case, matching the original scanner, which ignored it
// there too).
const (
	clsPlain = iota
	clsQuote
	clsOpen
	clsClose
	clsParen
	clsComma
	clsEsc
)

var argClass = [256]uint8{
	'"':  clsQuote,
	'(':  clsOpen,
	'{':  clsOpen,
	'[':  clsOpen,
	'}':  clsClose,
	']':  clsClose,
	')':  clsParen,
	',':  clsComma,
	'\\': clsEsc,
}

// finish parses an assembled call text and appends the record, if the
// call is modelled. The logic tracks straceCall.finish exactly; the
// differences are mechanical (slab record, interned strings, reused
// args slice).
func (p *straceParser) finish(tid int, ts int64, text string) error {
	name, rest, ok := cutByteShort(text, '(')
	if !ok {
		return errNoParen
	}
	name = trimFast(name)
	// One pass over the argument text does two jobs that used to be
	// separate scans with identical quote/depth rules: find the closing
	// paren that matches at depth 0, and split the args at top-level
	// commas (matcher depth 1 == splitter depth 0) on the way there.
	// The class table keeps the per-byte cost of ordinary characters —
	// the vast majority — to a single load and branch.
	args := p.args[:0]
	depth := 1
	inQ := false
	end := -1
	argStart := 0
	for i := 0; i < len(rest); i++ {
		cls := argClass[rest[i]]
		if cls == clsPlain {
			continue
		}
		if inQ {
			switch cls {
			case clsEsc:
				i++
			case clsQuote:
				inQ = false
			}
			continue
		}
		switch cls {
		case clsQuote:
			inQ = true
		case clsOpen:
			depth++
		case clsClose:
			depth--
		case clsParen:
			depth--
			if depth == 0 {
				end = i
			}
		case clsComma:
			if depth == 1 {
				args = append(args, trimFast(rest[argStart:i]))
				argStart = i + 1
				// Args are ", "-separated; consuming the known space
				// here changes nothing (TrimSpace strips it anyway)
				// but lets the next trim take its no-op fast path.
				if argStart < len(rest) && rest[argStart] == ' ' {
					argStart++
				}
			}
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return errUnbalanced
	}
	if last := trimFast(rest[argStart:end]); last != "" {
		args = append(args, last)
	}
	p.args = args
	result := trimFast(rest[end+1:])

	rec := p.alloc()
	p.dirty = true // assume abandoned until committed below
	rec.TID = tid
	// Known syscall names intern through a compiler string-switch
	// (length dispatch + memeq, no hashing); names outside the model's
	// set still go through the table, though their records are dropped.
	if c := internCall(name); c != "" {
		rec.Call = c
	} else {
		rec.Call = p.tab.Str(name)
	}
	rec.Start = time.Duration(ts - p.base())
	// Result: "= ret [ERRNO (text)] [<dur>]".
	result = strings.TrimPrefix(result, "=")
	result = trimFast(result)
	var durS string
	if i := strings.LastIndex(result, "<"); i >= 0 && strings.HasSuffix(result, ">") {
		durS = result[i+1 : len(result)-1]
		result = trimFast(result[:i])
	}
	retTok, errPart, _ := cutByteShort(result, ' ')
	if retTok == "?" {
		rec.Ret = 0
	} else if ret, ok := parseRetTok(retTok); ok {
		rec.Ret = ret
	} else {
		// Hex returns appear for mmap.
		ret, err := strconv.ParseInt(retTok, 0, 64)
		if err != nil {
			return fmt.Errorf("bad return %q", retTok)
		}
		rec.Ret = ret
	}
	if rec.Ret == -1 && errPart != "" {
		sym, _, _ := strings.Cut(trimFast(errPart), " ")
		rec.Err = p.tab.Str(sym)
	}
	dur := time.Duration(0)
	if durS != "" {
		dur = parseStraceDur(durS)
	}
	rec.End = rec.Start + dur

	if err := assignStraceArgs(rec, name, args, p.tab); err != nil {
		if err == errSkipCall {
			return nil
		}
		return err
	}
	p.used++
	p.dirty = false
	rec.Seq = int64(len(p.tr.Records)) // final for the sequential parse; merges renumber
	p.tr.Records = append(p.tr.Records, rec)
	return nil
}

// tooLongError converts bufio.ErrTooLong into the parser's ParseError,
// naming the offending line and the limit.
func tooLongError(lineNo int) *ParseError {
	return &ParseError{
		Line: lineNo,
		Msg: fmt.Sprintf("line exceeds the %d-byte limit; re-record with a smaller strace -s, or raise the cap",
			straceMaxLine),
	}
}

// lineScanner is a minimal replacement for bufio.Scanner+ScanLines,
// preserving its observable behaviour — lines split at '\n' with one
// trailing '\r' dropped, a final unterminated line delivered, buffered
// lines delivered before a read error is reported, and ErrTooLong once
// straceMaxLine bytes (counting a '\r', not the '\n') hold no newline —
// without the per-token split-function machinery.
type lineScanner struct {
	r        io.Reader
	buf      []byte
	pos, end int
	err      error // sticky; io.EOF means clean end of input
}

func newLineScanner(r io.Reader) *lineScanner {
	initial := 64 << 10
	if straceMaxLine < initial {
		initial = straceMaxLine
	}
	return &lineScanner{r: r, buf: make([]byte, initial)}
}

// next returns the next line (ok=true), or ok=false at end of input or
// on error — err() distinguishes. The returned slice aliases the
// internal buffer and dies at the next call.
func (ls *lineScanner) next() ([]byte, bool) {
	for {
		if i := bytes.IndexByte(ls.buf[ls.pos:ls.end], '\n'); i >= 0 {
			line := ls.buf[ls.pos : ls.pos+i]
			ls.pos += i + 1
			if n := len(line); n > 0 && line[n-1] == '\r' {
				line = line[:n-1]
			}
			return line, true
		}
		if ls.err != nil {
			// No newline is coming; deliver the final partial line
			// (bufio.Scanner does this for EOF and read errors alike).
			if ls.pos == ls.end {
				return nil, false
			}
			line := ls.buf[ls.pos:ls.end]
			ls.pos = ls.end
			if n := len(line); n > 0 && line[n-1] == '\r' {
				line = line[:n-1]
			}
			return line, true
		}
		if ls.end-ls.pos >= straceMaxLine {
			ls.err = bufio.ErrTooLong
			return nil, false
		}
		if ls.pos > 0 {
			copy(ls.buf, ls.buf[ls.pos:ls.end])
			ls.end -= ls.pos
			ls.pos = 0
		}
		if ls.end == len(ls.buf) {
			grow := len(ls.buf) * 2
			if grow > straceMaxLine {
				grow = straceMaxLine
			}
			nb := make([]byte, grow)
			copy(nb, ls.buf[:ls.end])
			ls.buf = nb
		}
		for empty := 0; ; empty++ {
			n, err := ls.r.Read(ls.buf[ls.end:])
			ls.end += n
			if err != nil {
				ls.err = err
				break
			}
			if n > 0 {
				break
			}
			if empty >= 100 {
				ls.err = io.ErrNoProgress
				return nil, false
			}
		}
	}
}

// readErr returns the error that ended the scan, nil for clean EOF.
func (ls *lineScanner) readErr() error {
	if ls.err == io.EOF {
		return nil
	}
	return ls.err
}

// parseStraceFast is the sequential fast path behind ParseStrace.
func parseStraceFast(r io.Reader) (*Trace, error) {
	tr, err := parseStraceEmit(r, 0, nil)
	return tr, err
}

// ParseStraceStream parses strace output sequentially while handing
// completed records to emit in batches of at least batch records (the
// final batch may be smaller). Records carry final Seq numbers and are
// emitted exactly once, in trace order; the returned Trace owns them
// all. An emit error aborts the parse and is returned verbatim. This
// is the producer half of the streaming parse→compile path (see
// artc.CompileStraceStream); batch <= 0 selects a default.
func ParseStraceStream(r io.Reader, batch int, emit func([]*Record) error) (*Trace, error) {
	if batch <= 0 {
		batch = 512
	}
	return parseStraceEmit(r, batch, emit)
}

func parseStraceEmit(r io.Reader, batch int, emit func([]*Record) error) (*Trace, error) {
	ls := newLineScanner(r)
	p := newStraceParser(true)
	lineNo := 0
	emitted := 0
	for {
		lineB, ok := ls.next()
		if !ok {
			break
		}
		lineNo++
		if err := p.line(bytesView(lineB), lineNo); err != nil {
			return nil, err
		}
		if emit != nil && len(p.tr.Records)-emitted >= batch {
			if err := p.flush(emit, &emitted); err != nil {
				return nil, err
			}
		}
	}
	if err := ls.readErr(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, tooLongError(lineNo + 1)
		}
		return nil, err
	}
	// No Renumber pass: finish assigns Seq = append index, which is
	// exactly what Renumber would recompute.
	if emit != nil {
		if err := p.flush(emit, &emitted); err != nil {
			return nil, err
		}
	}
	return p.tr, nil
}

// flush assigns Seq numbers to the not-yet-emitted tail and hands it to
// emit. Emitted sub-slices stay valid across later appends: the record
// pointers they hold are slab slots, and the sub-slice views the array
// as it was at emit time.
func (p *straceParser) flush(emit func([]*Record) error, emitted *int) error {
	recs := p.tr.Records[*emitted:]
	if len(recs) == 0 {
		return nil
	}
	for i, r := range recs {
		r.Seq = int64(*emitted + i)
	}
	*emitted += len(recs)
	return emit(recs)
}
