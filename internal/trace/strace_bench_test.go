package trace

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// Ingest benchmarks. The corpus is a generated multi-threaded workload
// (see genStraceCorpus) rendered as strace text — the same text every
// parser variant reads, so records/s and allocs/record compare
// directly. b.SetBytes makes `go test -bench` report MB/s.

func benchCorpus(b testing.TB) (string, int) {
	b.Helper()
	corpus := genStraceCorpus(b, 20000, 42)
	tr, err := ParseStrace(strings.NewReader(corpus))
	if err != nil {
		b.Fatal(err)
	}
	return corpus, len(tr.Records)
}

func BenchmarkParseStrace(b *testing.B) {
	corpus, _ := benchCorpus(b)
	data := []byte(corpus)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseStrace(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseStraceReference(b *testing.B) {
	corpus, _ := benchCorpus(b)
	data := []byte(corpus)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parseStraceReference(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseSharded(b *testing.B) {
	corpus, _ := benchCorpus(b)
	data := []byte(corpus)
	for _, n := range []int{1, 2, 4, 8} {
		if n > runtime.GOMAXPROCS(0) {
			break
		}
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := parseStraceBytes(data, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestParseStraceAllocRegression is the allocs-per-record gate: the
// fast path must spend at most a quarter of the reference parser's
// allocations on the same corpus.
func TestParseStraceAllocRegression(t *testing.T) {
	corpus, records := benchCorpus(t)
	data := []byte(corpus)
	measure := func(parse func() error) float64 {
		return testing.AllocsPerRun(3, func() {
			if err := parse(); err != nil {
				t.Fatal(err)
			}
		})
	}
	fast := measure(func() error {
		_, err := ParseStrace(bytes.NewReader(data))
		return err
	})
	ref := measure(func() error {
		_, err := parseStraceReference(bytes.NewReader(data))
		return err
	})
	t.Logf("allocs/parse: fast %.0f (%.2f/record), reference %.0f (%.2f/record)",
		fast, fast/float64(records), ref, ref/float64(records))
	if fast > ref/4 {
		t.Fatalf("fast path allocates %.0f, more than 25%% of the reference's %.0f", fast, ref)
	}
}
