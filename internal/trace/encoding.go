package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The native trace format is line-oriented and self-describing:
//
//	#artc-trace v1 platform=linux
//	0 1 open path="/a/b" flags=0x42 mode=0644 = 3 - 1000 2500
//	1 1 read fd=3 size=4096 = 4096 - 2600 5000
//	2 2 stat path="/x" = -1 ENOENT 2700 2900
//
// Each record line is: seq tid call key=value... = ret errno start end,
// where errno is "-" for success and times are integer nanoseconds.

// Encode serializes the trace in native format.
func (tr *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "#artc-trace v1 platform=%s\n", tr.Platform); err != nil {
		return err
	}
	for _, r := range tr.Records {
		if err := writeRecord(bw, r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeRecord(w *bufio.Writer, r *Record) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %d %s", r.Seq, r.TID, r.Call)
	if r.Path != "" {
		fmt.Fprintf(&b, " path=%q", r.Path)
	}
	if r.Path2 != "" {
		fmt.Fprintf(&b, " path2=%q", r.Path2)
	}
	if r.FD != 0 {
		fmt.Fprintf(&b, " fd=%d", r.FD)
	}
	if r.FD2 != 0 {
		fmt.Fprintf(&b, " fd2=%d", r.FD2)
	}
	if r.Offset != 0 {
		fmt.Fprintf(&b, " off=%d", r.Offset)
	}
	if r.Size != 0 {
		fmt.Fprintf(&b, " size=%d", r.Size)
	}
	if r.Flags != 0 {
		fmt.Fprintf(&b, " flags=%#x", int64(r.Flags))
	}
	if r.Mode != 0 {
		fmt.Fprintf(&b, " mode=%#o", r.Mode)
	}
	if r.Name != "" {
		fmt.Fprintf(&b, " name=%q", r.Name)
	}
	if r.Whence != 0 {
		fmt.Fprintf(&b, " whence=%d", r.Whence)
	}
	if r.AIO != 0 {
		fmt.Fprintf(&b, " aio=%d", r.AIO)
	}
	errs := r.Err
	if errs == "" {
		errs = "-"
	}
	fmt.Fprintf(&b, " = %d %s %d %d\n", r.Ret, errs, int64(r.Start), int64(r.End))
	_, err := w.WriteString(b.String())
	return err
}

// ParseError reports a malformed trace line.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("trace: line %d: %s (%q)", e.Line, e.Msg, e.Text)
}

// Decode parses a native-format trace.
func Decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	tr := &Trace{Platform: "linux"}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "#artc-trace") {
				for _, f := range strings.Fields(line) {
					if v, ok := strings.CutPrefix(f, "platform="); ok {
						tr.Platform = v
					}
				}
			}
			continue
		}
		rec, err := parseRecordLine(line)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: err.Error()}
		}
		tr.Records = append(tr.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// fields splits a record line into tokens, keeping quoted strings (which
// may contain spaces) intact.
func fields(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		inQuote := false
		for i < len(line) && (inQuote || line[i] != ' ') {
			switch line[i] {
			case '"':
				inQuote = !inQuote
			case '\\':
				if inQuote && i+1 < len(line) {
					i++
				}
			}
			i++
		}
		if inQuote {
			return nil, fmt.Errorf("unterminated quote")
		}
		out = append(out, line[start:i])
	}
	return out, nil
}

func parseRecordLine(line string) (*Record, error) {
	toks, err := fields(line)
	if err != nil {
		return nil, err
	}
	if len(toks) < 4 {
		return nil, fmt.Errorf("too few fields")
	}
	rec := &Record{}
	if rec.Seq, err = strconv.ParseInt(toks[0], 10, 64); err != nil {
		return nil, fmt.Errorf("bad seq: %v", err)
	}
	tid, err := strconv.Atoi(toks[1])
	if err != nil {
		return nil, fmt.Errorf("bad tid: %v", err)
	}
	rec.TID = tid
	rec.Call = toks[2]

	i := 3
	for i < len(toks) && toks[i] != "=" {
		key, val, ok := strings.Cut(toks[i], "=")
		if !ok {
			return nil, fmt.Errorf("bad key=value token %q", toks[i])
		}
		if err := setField(rec, key, val); err != nil {
			return nil, err
		}
		i++
	}
	if i+4 >= len(toks)+1 && len(toks)-i != 5 {
		return nil, fmt.Errorf("bad result section")
	}
	// toks[i] == "=", then ret errno start end.
	rest := toks[i+1:]
	if len(rest) != 4 {
		return nil, fmt.Errorf("result section has %d fields, want 4", len(rest))
	}
	if rec.Ret, err = strconv.ParseInt(rest[0], 10, 64); err != nil {
		return nil, fmt.Errorf("bad ret: %v", err)
	}
	if rest[1] != "-" {
		rec.Err = rest[1]
	}
	start, err := strconv.ParseInt(rest[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad start: %v", err)
	}
	end, err := strconv.ParseInt(rest[3], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad end: %v", err)
	}
	rec.Start, rec.End = time.Duration(start), time.Duration(end)
	return rec, nil
}

func setField(rec *Record, key, val string) error {
	switch key {
	case "path", "path2", "name":
		s, err := strconv.Unquote(val)
		if err != nil {
			return fmt.Errorf("bad quoted %s: %v", key, err)
		}
		switch key {
		case "path":
			rec.Path = s
		case "path2":
			rec.Path2 = s
		case "name":
			rec.Name = s
		}
		return nil
	case "flags":
		n, err := strconv.ParseInt(val, 0, 64)
		if err != nil {
			return fmt.Errorf("bad flags: %v", err)
		}
		rec.Flags = OpenFlag(n)
		return nil
	case "mode":
		n, err := strconv.ParseUint(val, 0, 32)
		if err != nil {
			return fmt.Errorf("bad mode: %v", err)
		}
		rec.Mode = uint32(n)
		return nil
	case "whence":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("bad whence: %v", err)
		}
		rec.Whence = n
		return nil
	}
	n, err := strconv.ParseInt(val, 0, 64)
	if err != nil {
		return fmt.Errorf("bad %s: %v", key, err)
	}
	switch key {
	case "fd":
		rec.FD = n
	case "fd2":
		rec.FD2 = n
	case "off":
		rec.Offset = n
	case "size":
		rec.Size = n
	case "aio":
		rec.AIO = n
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}
