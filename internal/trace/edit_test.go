package trace

import (
	"testing"
	"time"
)

func TestFilterThreads(t *testing.T) {
	tr := sampleTrace()
	only2 := tr.FilterThreads(2)
	if len(only2.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(only2.Records))
	}
	for i, r := range only2.Records {
		if r.TID != 2 {
			t.Fatalf("record %d has TID %d", i, r.TID)
		}
		if r.Seq != int64(i) {
			t.Fatalf("not renumbered: %d at %d", r.Seq, i)
		}
	}
	// Original untouched.
	if len(tr.Records) != 7 {
		t.Fatal("original mutated")
	}
	if n := len(tr.FilterThreads(99).Records); n != 0 {
		t.Fatalf("unknown tid kept %d records", n)
	}
}

func TestWindow(t *testing.T) {
	tr := sampleTrace() // starts at 1000ns..3400ns
	w := tr.Window(2500, 3100)
	// Records with Start in [2500, 3100): write(2500), stat(2550),
	// rename(3000).
	if len(w.Records) != 3 {
		t.Fatalf("window records = %d, want 3", len(w.Records))
	}
	if w.Records[0].Start != 0 {
		t.Fatalf("window not rebased: first start %v", w.Records[0].Start)
	}
	if w.Records[2].Start != 500*time.Nanosecond {
		t.Fatalf("rebased start = %v", w.Records[2].Start)
	}
}

func TestMergeDisjointThreadsAndFDs(t *testing.T) {
	a := &Trace{Platform: "linux", Records: []*Record{
		{TID: 1, Call: "open", Path: "/a", Ret: 3, Start: 0, End: 10},
		{TID: 1, Call: "read", FD: 3, Size: 100, Ret: 100, Start: 20, End: 30},
	}}
	b := &Trace{Platform: "linux", Records: []*Record{
		{TID: 1, Call: "open", Path: "/b", Ret: 3, Start: 5, End: 15},
		{TID: 1, Call: "close", FD: 3, Ret: 0, Start: 25, End: 26},
	}}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if len(m.Records) != 4 {
		t.Fatalf("merged records = %d", len(m.Records))
	}
	// Sorted by start: a.open(0), b.open(5), a.read(20), b.close(25).
	if m.Records[0].Path != "/a" || m.Records[1].Path != "/b" {
		t.Fatalf("merge order wrong: %v %v", m.Records[0].Path, m.Records[1].Path)
	}
	// Threads disjoint.
	if m.Records[0].TID == m.Records[1].TID {
		t.Fatal("thread collision after merge")
	}
	// Descriptor numbers disjoint: a's read fd != b's close fd.
	if m.Records[2].FD == m.Records[3].FD {
		t.Fatal("fd collision after merge")
	}
	// a's open return matches a's read fd.
	if m.Records[0].Ret != m.Records[2].FD {
		t.Fatalf("fd remap broke open/read pairing: %d vs %d", m.Records[0].Ret, m.Records[2].FD)
	}
	for i, r := range m.Records {
		if r.Seq != int64(i) {
			t.Fatal("merge not renumbered")
		}
	}
}

func TestMergePlatform(t *testing.T) {
	a := &Trace{Platform: "osx", Records: []*Record{{TID: 1, Call: "sync"}}}
	m, err := Merge(a)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if m.Platform != "osx" {
		t.Fatalf("platform = %s", m.Platform)
	}
}

func TestMergePlatformMismatchRejected(t *testing.T) {
	a := &Trace{Platform: "osx", Records: []*Record{{TID: 1, Call: "sync"}}}
	b := &Trace{Platform: "linux", Records: []*Record{{TID: 1, Call: "sync"}}}
	if _, err := Merge(a, b); err == nil {
		t.Fatal("merging osx with linux should fail")
	}
	// A platform-less input (e.g. synthetic) merges with anything.
	c := &Trace{Records: []*Record{{TID: 1, Call: "sync"}}}
	m, err := Merge(c, a)
	if err != nil {
		t.Fatalf("Merge with platform-less input: %v", err)
	}
	if m.Platform != "osx" {
		t.Fatalf("platform = %s, want osx", m.Platform)
	}
}

func TestMergeRemapsFcntlDupFD(t *testing.T) {
	// Input b duplicates fd 3 to fd 7 via fcntl(F_DUPFD) and then reads
	// from the duplicate; the duplicate's number must be remapped into
	// b's descriptor range along with everything else.
	a := &Trace{Platform: "linux", Records: []*Record{
		{TID: 1, Call: "open", Path: "/a", Ret: 7, Start: 0, End: 1},
	}}
	b := &Trace{Platform: "linux", Records: []*Record{
		{TID: 1, Call: "open", Path: "/b", Ret: 3, Start: 2, End: 3},
		{TID: 1, Call: "fcntl", Name: "F_DUPFD", FD: 3, Ret: 7, Start: 4, End: 5},
		{TID: 1, Call: "read", FD: 7, Size: 10, Ret: 10, Start: 6, End: 7},
	}}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	// Records sorted by start: a.open, b.open, b.fcntl, b.read.
	dup, rd := m.Records[2], m.Records[3]
	if dup.Call != "fcntl" || rd.Call != "read" {
		t.Fatalf("unexpected order: %s, %s", dup.Call, rd.Call)
	}
	if dup.Ret == 7 {
		t.Fatalf("F_DUPFD return not remapped: %d", dup.Ret)
	}
	if dup.Ret != rd.FD {
		t.Fatalf("F_DUPFD return %d does not match later read fd %d", dup.Ret, rd.FD)
	}
	// The duplicate must not collide with a's descriptor range.
	if dup.Ret == m.Records[0].Ret {
		t.Fatal("F_DUPFD duplicate collides with the other input's descriptor")
	}
}
