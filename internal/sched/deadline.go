package sched

import (
	"sort"
	"time"

	"rootreplay/internal/sim"
	"rootreplay/internal/storage"
)

// DeadlineParams tune the deadline scheduler model.
type DeadlineParams struct {
	// ReadExpire and WriteExpire bound request latency: a request past
	// its deadline is serviced next regardless of elevator order (Linux
	// defaults: 500ms reads, 5s writes).
	ReadExpire  time.Duration
	WriteExpire time.Duration
	// Batch is how many requests are dispatched in elevator order before
	// the scheduler re-checks deadlines (fifo_batch).
	Batch int
}

// DefaultDeadline returns Linux-like defaults.
func DefaultDeadline() DeadlineParams {
	return DeadlineParams{
		ReadExpire:  500 * time.Millisecond,
		WriteExpire: 5 * time.Second,
		Batch:       16,
	}
}

type dlPending struct {
	r        *storage.Request
	done     func()
	deadline time.Duration
}

// Deadline models Linux's deadline I/O scheduler: requests are kept in a
// sector-sorted list and dispatched in elevator batches, but each
// request also carries an expiry; when the head of a FIFO is past its
// deadline, the scheduler jumps there, bounding starvation. Unlike CFQ
// it has no per-thread fairness or anticipation, so it never idles the
// device — sync readers pay no slice or idling costs.
type Deadline struct {
	k   *sim.Kernel
	dev storage.Device
	p   DeadlineParams

	sorted      []*dlPending // by LBA
	fifo        []*dlPending // by arrival
	inBatch     int
	lastLBA     int64
	outstanding int
	inDevice    int
}

// NewDeadline returns a deadline scheduler for dev bound to k.
func NewDeadline(k *sim.Kernel, dev storage.Device, p DeadlineParams) *Deadline {
	if p.ReadExpire <= 0 {
		p.ReadExpire = DefaultDeadline().ReadExpire
	}
	if p.WriteExpire <= 0 {
		p.WriteExpire = DefaultDeadline().WriteExpire
	}
	if p.Batch <= 0 {
		p.Batch = DefaultDeadline().Batch
	}
	return &Deadline{k: k, dev: dev, p: p}
}

// Name implements Scheduler.
func (s *Deadline) Name() string { return "deadline" }

// Outstanding implements Scheduler.
func (s *Deadline) Outstanding() int { return s.outstanding }

// InFlight implements Scheduler.
func (s *Deadline) InFlight() int { return s.inDevice }

// Submit implements Scheduler.
func (s *Deadline) Submit(r *storage.Request, done func()) {
	s.outstanding++
	exp := s.p.ReadExpire
	if r.Kind == storage.Write {
		exp = s.p.WriteExpire
	}
	p := &dlPending{r: r, done: done, deadline: s.k.Now() + exp}
	idx := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i].r.LBA >= r.LBA })
	s.sorted = append(s.sorted, nil)
	copy(s.sorted[idx+1:], s.sorted[idx:])
	s.sorted[idx] = p
	s.fifo = append(s.fifo, p)
	s.dispatch()
}

// dispatch forwards requests within the device's queue budget.
func (s *Deadline) dispatch() {
	budget := s.dev.QueueDepth()
	if budget < 1 {
		budget = 1
	}
	for s.inDevice < budget && len(s.sorted) > 0 {
		var pick *dlPending
		// Deadlines are only consulted between batches (fifo_batch):
		// within a batch the elevator runs uninterrupted.
		if s.inBatch == 0 && len(s.fifo) > 0 && s.k.Now() >= s.fifo[0].deadline {
			// Expired: jump to the FIFO head and start a fresh batch
			// from its position.
			pick = s.fifo[0]
			s.inBatch = 1
		} else {
			// Elevator: next request at or after the last dispatched LBA,
			// wrapping to the lowest.
			idx := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i].r.LBA >= s.lastLBA })
			if idx == len(s.sorted) {
				idx = 0
			}
			pick = s.sorted[idx]
			s.inBatch++
			if s.inBatch >= s.p.Batch {
				s.inBatch = 0
			}
		}
		s.remove(pick)
		s.lastLBA = pick.r.End()
		s.inDevice++
		p := pick
		s.dev.Submit(p.r, func() {
			s.inDevice--
			s.outstanding--
			p.done()
			s.dispatch()
		})
	}
}

// remove deletes p from both queues.
func (s *Deadline) remove(p *dlPending) {
	for i, q := range s.sorted {
		if q == p {
			s.sorted = append(s.sorted[:i], s.sorted[i+1:]...)
			break
		}
	}
	for i, q := range s.fifo {
		if q == p {
			s.fifo = append(s.fifo[:i], s.fifo[i+1:]...)
			break
		}
	}
}
