package sched

import (
	"testing"
	"testing/quick"
	"time"

	"rootreplay/internal/sim"
	"rootreplay/internal/storage"
)

// seqReader simulates a thread issuing back-to-back sequential 4KB reads
// from its own region, via the scheduler, until stop time. It returns a
// count of completed reads through the pointer.
func seqReader(k *sim.Kernel, s Scheduler, owner int, startLBA int64, until time.Duration, count *int) {
	k.Spawn("reader", func(t *sim.Thread) {
		lba := startLBA
		for k.Now() < until {
			done := sim.NewCond(k)
			finished := false
			s.Submit(&storage.Request{Kind: storage.Read, LBA: lba, Blocks: 8, Owner: owner}, func() {
				finished = true
				done.Broadcast()
			})
			for !finished {
				done.Wait(t, "io")
			}
			lba += 8
			*count++
		}
	})
}

func TestNoopPassesThrough(t *testing.T) {
	k := sim.NewKernel()
	dev := storage.NewHDD(k, "d", storage.DefaultHDD())
	s := NewNoop(dev)
	n := 0
	for i := 0; i < 10; i++ {
		s.Submit(&storage.Request{Kind: storage.Read, LBA: int64(i * 1000), Blocks: 1, Owner: 1}, func() { n++ })
	}
	if s.Outstanding() != 10 {
		t.Fatalf("outstanding = %d", s.Outstanding())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 10 || s.Outstanding() != 0 {
		t.Fatalf("completed %d, outstanding %d", n, s.Outstanding())
	}
}

// Two competing sequential readers: a long slice should give much higher
// aggregate throughput than a tiny slice, because switching threads
// costs a seek between their files.
func TestCFQSliceThroughputTradeoff(t *testing.T) {
	run := func(slice time.Duration) int {
		k := sim.NewKernel()
		dev := storage.NewHDD(k, "d", storage.DefaultHDD())
		p := DefaultCFQ()
		p.SliceSync = slice
		s := NewCFQ(k, dev, p)
		total := 0
		c1, c2 := 0, 0
		// Far-apart regions: switching owners costs a long seek.
		seqReader(k, s, 1, 0, 2*time.Second, &c1)
		seqReader(k, s, 2, 10_000_000, 2*time.Second, &c2)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		total = c1 + c2
		return total
	}
	big := run(100 * time.Millisecond)
	small := run(1 * time.Millisecond)
	if big <= small {
		t.Fatalf("100ms slice (%d reads) not faster than 1ms slice (%d reads)", big, small)
	}
	ratio := float64(big) / float64(small)
	if ratio < 1.5 {
		t.Fatalf("slice effect too weak: ratio %.2f", ratio)
	}
}

// With a long slice both readers should still both make progress
// (fairness): neither should be starved entirely over a long run.
func TestCFQFairness(t *testing.T) {
	k := sim.NewKernel()
	dev := storage.NewHDD(k, "d", storage.DefaultHDD())
	s := NewCFQ(k, dev, DefaultCFQ())
	c1, c2 := 0, 0
	seqReader(k, s, 1, 0, 3*time.Second, &c1)
	seqReader(k, s, 2, 10_000_000, 3*time.Second, &c2)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c1 == 0 || c2 == 0 {
		t.Fatalf("starvation: c1=%d c2=%d", c1, c2)
	}
	lo, hi := c1, c2
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(lo) < 0.25*float64(hi) {
		t.Fatalf("unfair split: %d vs %d", c1, c2)
	}
}

// Anticipation: a single sequential reader with sub-millisecond think
// time must not lose the device to a competing seeky owner on every
// request. We check that the sequential reader achieves most of the
// throughput it would get running alone.
func TestCFQAnticipationHoldsDevice(t *testing.T) {
	seqOnly := func(withCompetitor bool) int {
		k := sim.NewKernel()
		dev := storage.NewHDD(k, "d", storage.DefaultHDD())
		s := NewCFQ(k, dev, DefaultCFQ())
		c := 0
		// Sequential reader with a tiny compute gap between requests.
		k.Spawn("seq", func(t *sim.Thread) {
			lba := int64(0)
			for k.Now() < time.Second {
				done := sim.NewCond(k)
				fin := false
				s.Submit(&storage.Request{Kind: storage.Read, LBA: lba, Blocks: 8, Owner: 1}, func() {
					fin = true
					done.Broadcast()
				})
				for !fin {
					done.Wait(t, "io")
				}
				lba += 8
				c++
				t.Sleep(50 * time.Microsecond) // think time
			}
		})
		if withCompetitor {
			k.Spawn("rand", func(t *sim.Thread) {
				n := int64(1)
				for k.Now() < time.Second {
					done := sim.NewCond(k)
					fin := false
					lba := (n*2654435761 + 999) % 50_000_000
					s.Submit(&storage.Request{Kind: storage.Read, LBA: lba, Blocks: 1, Owner: 2}, func() {
						fin = true
						done.Broadcast()
					})
					for !fin {
						done.Wait(t, "io")
					}
					n++
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	alone := seqOnly(false)
	shared := seqOnly(true)
	// With anticipation the sequential reader keeps its slices; it should
	// retain a solid share (at least a third) of its solo throughput
	// rather than collapsing to seek-bound ping-pong.
	if float64(shared) < 0.33*float64(alone) {
		t.Fatalf("anticipation failed: alone=%d shared=%d", alone, shared)
	}
}

// Parallel random readers through CFQ should beat a single random reader
// doing the same total work, because seeky queues do not idle and the
// device elevator sees a deep queue.
func TestCFQSeekyQueuesKeepDeviceQueueDeep(t *testing.T) {
	randomReaders := func(nThreads, readsPer int) time.Duration {
		k := sim.NewKernel()
		dev := storage.NewHDD(k, "d", storage.DefaultHDD())
		s := NewCFQ(k, dev, DefaultCFQ())
		wg := sim.NewWaitGroup(k)
		wg.Add(nThreads)
		for th := 0; th < nThreads; th++ {
			th := th
			k.Spawn("rr", func(t *sim.Thread) {
				defer wg.Done()
				for i := 0; i < readsPer; i++ {
					done := sim.NewCond(k)
					fin := false
					lba := (int64(i+th*readsPer)*2654435761 + int64(th)) % 50_000_000
					s.Submit(&storage.Request{Kind: storage.Read, LBA: lba, Blocks: 1, Owner: th + 1}, func() {
						fin = true
						done.Broadcast()
					})
					for !fin {
						done.Wait(t, "io")
					}
				}
			})
		}
		var total time.Duration
		k.Spawn("waiter", func(t *sim.Thread) {
			wg.Wait(t)
			total = k.Now()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return total
	}
	serial := randomReaders(1, 400)
	parallel := randomReaders(8, 50)
	if float64(parallel) > 0.9*float64(serial) {
		t.Fatalf("8-way random not faster: serial=%v parallel=%v", serial, parallel)
	}
}

// Property: every request submitted through either scheduler completes
// exactly once and Outstanding returns to zero.
func TestQuickSchedulersComplete(t *testing.T) {
	f := func(lbas []uint32, owners []uint8, useCFQ bool) bool {
		if len(lbas) == 0 {
			return true
		}
		if len(lbas) > 64 {
			lbas = lbas[:64]
		}
		k := sim.NewKernel()
		dev := storage.NewHDD(k, "d", storage.DefaultHDD())
		var s Scheduler
		if useCFQ {
			s = NewCFQ(k, dev, DefaultCFQ())
		} else {
			s = NewNoop(dev)
		}
		completed := 0
		for i, l := range lbas {
			owner := 1
			if len(owners) > 0 {
				owner = int(owners[i%len(owners)])%4 + 1
			}
			s.Submit(&storage.Request{
				Kind: storage.Read, LBA: int64(l % 1_000_000), Blocks: 1, Owner: owner,
			}, func() { completed++ })
		}
		if err := k.Run(); err != nil {
			return false
		}
		return completed == len(lbas) && s.Outstanding() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Requests keep flowing when submissions trickle in over time (the idle
// timer must not wedge the scheduler).
func TestCFQTrickleSubmission(t *testing.T) {
	k := sim.NewKernel()
	dev := storage.NewHDD(k, "d", storage.DefaultHDD())
	s := NewCFQ(k, dev, DefaultCFQ())
	completed := 0
	for i := 0; i < 20; i++ {
		i := i
		k.At(time.Duration(i)*37*time.Millisecond, func() {
			s.Submit(&storage.Request{
				Kind: storage.Read, LBA: int64(i) * 123_457 % 1_000_000, Blocks: 1, Owner: i%3 + 1,
			}, func() { completed++ })
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if completed != 20 {
		t.Fatalf("completed = %d, want 20", completed)
	}
}

func BenchmarkCFQRandomMix(b *testing.B) {
	k := sim.NewKernel()
	dev := storage.NewHDD(k, "d", storage.DefaultHDD())
	s := NewCFQ(k, dev, DefaultCFQ())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit(&storage.Request{
			Kind: storage.Read, LBA: int64(i) * 2654435761 % 1_000_000, Blocks: 1, Owner: i%8 + 1,
		}, func() {})
	}
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestDeadlineCompletesAll(t *testing.T) {
	k := sim.NewKernel()
	dev := storage.NewHDD(k, "d", storage.DefaultHDD())
	s := NewDeadline(k, dev, DefaultDeadline())
	n := 0
	for i := 0; i < 50; i++ {
		s.Submit(&storage.Request{
			Kind: storage.Read, LBA: int64(i) * 2654435761 % 1_000_000, Blocks: 1, Owner: i%4 + 1,
		}, func() { n++ })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 50 || s.Outstanding() != 0 {
		t.Fatalf("completed %d, outstanding %d", n, s.Outstanding())
	}
}

// Deadline bounds starvation: a request at a far-away LBA completes
// within its expiry even while a stream of nearby requests keeps the
// elevator busy.
func TestDeadlineExpiryPreventsStarvation(t *testing.T) {
	k := sim.NewKernel()
	dev := storage.NewHDD(k, "d", storage.DefaultHDD())
	p := DefaultDeadline()
	p.ReadExpire = 200 * time.Millisecond
	s := NewDeadline(k, dev, p)
	var farDone time.Duration
	s.Submit(&storage.Request{Kind: storage.Read, LBA: 60_000_000, Blocks: 1, Owner: 2}, func() {
		farDone = k.Now()
	})
	// A continuous stream of low-LBA requests that would otherwise keep
	// the head parked near zero.
	var feed func(i int)
	feed = func(i int) {
		if i >= 400 {
			return
		}
		s.Submit(&storage.Request{Kind: storage.Read, LBA: int64(i) * 64, Blocks: 1, Owner: 1}, func() {
			feed(i + 1)
		})
	}
	feed(0)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if farDone == 0 {
		t.Fatal("far request never completed")
	}
	// Within expiry plus a service-time allowance.
	if farDone > p.ReadExpire+100*time.Millisecond {
		t.Fatalf("far request done at %v, expiry %v", farDone, p.ReadExpire)
	}
}

// Deadline never idles: sequential readers pay no anticipation or slice
// cost, so a random competitor is serviced promptly (lower worst-case
// latency than CFQ's slice would give it).
func TestDeadlineNoIdling(t *testing.T) {
	k := sim.NewKernel()
	dev := storage.NewHDD(k, "d", storage.DefaultHDD())
	s := NewDeadline(k, dev, DefaultDeadline())
	var competitorDone time.Duration
	k.Spawn("seq", func(t2 *sim.Thread) {
		lba := int64(0)
		for i := 0; i < 200; i++ {
			done := sim.NewCond(k)
			fin := false
			s.Submit(&storage.Request{Kind: storage.Read, LBA: lba, Blocks: 8, Owner: 1}, func() {
				fin = true
				done.Broadcast()
			})
			for !fin {
				done.Wait(t2, "io")
			}
			lba += 8
		}
	})
	k.At(10*time.Millisecond, func() {
		s.Submit(&storage.Request{Kind: storage.Read, LBA: 50_000_000, Blocks: 1, Owner: 2}, func() {
			competitorDone = k.Now()
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if competitorDone == 0 {
		t.Fatal("competitor never completed")
	}
	if competitorDone > 600*time.Millisecond {
		t.Fatalf("competitor done at %v; deadline should bound it", competitorDone)
	}
}
