// Package sched implements block I/O schedulers that sit between the
// page cache and a storage device.
//
// Two schedulers are provided:
//
//   - Noop: dispatches every request to the device immediately, leaving
//     any reordering to the device's internal queue (NCQ elevator).
//   - CFQ: a model of Linux's Completely Fair Queueing scheduler with
//     anticipation, the scheduler the paper tunes in §5.2.1 ("Scheduler
//     slice size"). Requests are sorted into per-thread queues; the
//     active queue is serviced exclusively for a time slice
//     (slice_sync), and when a non-seeky queue runs dry the device is
//     held idle for a short window in anticipation of the next request
//     from the same thread. Queues classified as seeky (random I/O) do
//     not idle and are dispatched freely, which preserves the NCQ
//     benefit for parallel random workloads.
package sched

import (
	"time"

	"rootreplay/internal/sim"
	"rootreplay/internal/storage"
)

// Scheduler accepts block requests and forwards them to a device
// according to a scheduling policy. Submit never blocks; done runs in
// kernel context when the request completes.
type Scheduler interface {
	// Name identifies the scheduler ("noop", "cfq").
	Name() string
	// Submit enqueues a request.
	Submit(r *storage.Request, done func())
	// Outstanding reports requests submitted but not yet completed.
	Outstanding() int
	// InFlight reports requests dispatched to the device but not yet
	// completed; Outstanding() - InFlight() is the scheduler's queued
	// depth. Observability probes sample both.
	InFlight() int
}

// Noop dispatches requests straight to the device in arrival order.
type Noop struct {
	dev         storage.Device
	outstanding int
}

// NewNoop returns a pass-through scheduler for dev.
func NewNoop(dev storage.Device) *Noop { return &Noop{dev: dev} }

// Name implements Scheduler.
func (s *Noop) Name() string { return "noop" }

// Outstanding implements Scheduler.
func (s *Noop) Outstanding() int { return s.outstanding }

// InFlight implements Scheduler; Noop holds nothing back, so every
// outstanding request is at the device.
func (s *Noop) InFlight() int { return s.outstanding }

// Submit implements Scheduler.
func (s *Noop) Submit(r *storage.Request, done func()) {
	s.outstanding++
	s.dev.Submit(r, func() {
		s.outstanding--
		done()
	})
}

// CFQParams tune the CFQ model.
type CFQParams struct {
	// SliceSync is the service slice granted to a queue, the paper's
	// slice_sync tunable. Linux default is ~100ms for sync queues.
	SliceSync time.Duration
	// IdleWindow is how long the device is held idle waiting for the
	// next request from the active non-seeky queue (Linux: ~8ms).
	IdleWindow time.Duration
	// SeekyThreshold is the block distance between consecutive requests
	// beyond which an access is counted as a seek when classifying a
	// queue as seeky.
	SeekyThreshold int64
}

// DefaultCFQ returns Linux-like defaults (slice_sync = 100ms).
func DefaultCFQ() CFQParams {
	return CFQParams{
		SliceSync:      100 * time.Millisecond,
		IdleWindow:     8 * time.Millisecond,
		SeekyThreshold: 1024, // 4 MiB
	}
}

type cfqPending struct {
	r    *storage.Request
	done func()
}

type cfqQueue struct {
	owner   int
	fifo    []cfqPending
	lastEnd int64   // end LBA of the most recent request, for seek detection
	seekEWA float64 // exponentially-weighted fraction of seeky accesses
	started bool
}

// seeky reports whether the queue's recent access pattern is random.
func (q *cfqQueue) seeky() bool { return q.started && q.seekEWA > 0.5 }

func (q *cfqQueue) observe(r *storage.Request, threshold int64) {
	dist := r.LBA - q.lastEnd
	if dist < 0 {
		dist = -dist
	}
	sample := 0.0
	if q.started && dist > threshold {
		sample = 1.0
	}
	if !q.started {
		q.started = true
		q.seekEWA = sample
	} else {
		q.seekEWA = 0.7*q.seekEWA + 0.3*sample
	}
	q.lastEnd = r.End()
}

// CFQ is the anticipatory fair-queueing scheduler model.
type CFQ struct {
	k   *sim.Kernel
	dev storage.Device
	p   CFQParams

	queues      map[int]*cfqQueue
	order       []int // round-robin order of owners with ever-seen traffic
	active      int   // owner of the active queue; -1 if none
	sliceEnd    time.Duration
	idleTimer   *sim.Timer // reused across every anticipation window
	idling      bool       // device held idle for the active owner
	outstanding int        // submitted to scheduler, not yet completed
	inDevice    int        // dispatched to device, not yet completed
}

// NewCFQ returns a CFQ scheduler for dev bound to kernel k.
func NewCFQ(k *sim.Kernel, dev storage.Device, p CFQParams) *CFQ {
	if p.SliceSync <= 0 {
		p.SliceSync = DefaultCFQ().SliceSync
	}
	if p.IdleWindow <= 0 {
		p.IdleWindow = DefaultCFQ().IdleWindow
	}
	if p.SeekyThreshold <= 0 {
		p.SeekyThreshold = DefaultCFQ().SeekyThreshold
	}
	s := &CFQ{k: k, dev: dev, p: p, queues: make(map[int]*cfqQueue), active: -1}
	s.idleTimer = k.NewTimer(s.idleExpired)
	return s
}

// Name implements Scheduler.
func (s *CFQ) Name() string { return "cfq" }

// Outstanding implements Scheduler.
func (s *CFQ) Outstanding() int { return s.outstanding }

// InFlight implements Scheduler.
func (s *CFQ) InFlight() int { return s.inDevice }

// Submit implements Scheduler.
func (s *CFQ) Submit(r *storage.Request, done func()) {
	s.outstanding++
	q := s.queues[r.Owner]
	if q == nil {
		q = &cfqQueue{owner: r.Owner}
		s.queues[r.Owner] = q
		s.order = append(s.order, r.Owner)
	}
	q.fifo = append(q.fifo, cfqPending{r, done})
	if s.active == -1 {
		s.activate(r.Owner)
	} else if s.idling && s.active == r.Owner {
		// The anticipated request arrived: stop idling and serve it.
		s.idling = false
		s.idleTimer.Stop()
	}
	s.dispatch()
}

// activate makes owner the active queue and starts a fresh slice.
func (s *CFQ) activate(owner int) {
	s.active = owner
	s.sliceEnd = s.k.Now() + s.p.SliceSync
	s.idling = false
	s.idleTimer.Stop()
}

// nextOwner returns the next owner after the active one (round-robin)
// with queued requests, or -1.
func (s *CFQ) nextOwner() int {
	if len(s.order) == 0 {
		return -1
	}
	start := 0
	for i, o := range s.order {
		if o == s.active {
			start = i + 1
			break
		}
	}
	for i := 0; i < len(s.order); i++ {
		o := s.order[(start+i)%len(s.order)]
		if q := s.queues[o]; q != nil && len(q.fifo) > 0 {
			return o
		}
	}
	return -1
}

// allPendingSeeky reports whether every queue with pending requests is
// classified seeky; in that case CFQ serves them all without idling
// (Linux's sync-noidle service tree), letting the device elevator work.
func (s *CFQ) allPendingSeeky() bool {
	any := false
	for _, q := range s.queues {
		if len(q.fifo) == 0 {
			continue
		}
		any = true
		if !q.seeky() {
			return false
		}
	}
	return any
}

// dispatch forwards requests to the device within the dispatch budget.
// While the scheduler is idling (anticipating the active owner's next
// request) the device is reserved and nothing is dispatched.
func (s *CFQ) dispatch() {
	if s.idling {
		return
	}
	budget := s.dev.QueueDepth()
	if budget < 1 {
		budget = 1
	}
	for s.inDevice < budget {
		if s.active == -1 {
			o := s.nextOwner()
			if o == -1 {
				return
			}
			s.activate(o)
		}
		q := s.queues[s.active]
		if len(q.fifo) == 0 {
			// Active queue dry: idle (anticipate) if the device is
			// rotational (CFQ never idles on SSDs) and the queue is
			// non-seeky and within its slice; otherwise move on.
			if s.dev.Rotational() && !q.seeky() && s.k.Now() < s.sliceEnd {
				s.startIdle()
				return
			}
			o := s.nextOwner()
			if o == -1 {
				s.active = -1
				return
			}
			s.activate(o)
			continue
		}
		if s.k.Now() >= s.sliceEnd {
			// Slice expired: switch if anyone else is waiting.
			if o := s.nextOwner(); o != -1 && o != s.active {
				s.activate(o)
				continue
			}
			// No competition: renew the slice.
			s.sliceEnd = s.k.Now() + s.p.SliceSync
		}
		s.startOne(q)
		// Seeky queues do not hold the device: when every pending queue
		// is seeky, rotate after each dispatch so the device elevator
		// sees requests from all of them (Linux's sync-noidle tree).
		if q.seeky() && s.allPendingSeeky() {
			if o := s.nextOwner(); o != -1 {
				s.activate(o)
			}
		}
	}
}

// startIdle holds the device idle for the anticipation window; if the
// active owner does not submit in time, the scheduler switches queues.
func (s *CFQ) startIdle() {
	if s.idling {
		return
	}
	if s.inDevice > 0 {
		// Anticipation begins only once the device is quiet; completion
		// of the in-flight request re-runs dispatch, which gets us here
		// again.
		return
	}
	s.idling = true
	deadline := s.p.IdleWindow
	if remaining := s.sliceEnd - s.k.Now(); remaining < deadline {
		deadline = remaining
	}
	// Reset reuses the scheduler's single timer (and, through the kernel
	// pool, its event) instead of allocating a fresh closure per window;
	// Stop/Reset invalidate any still-queued expiry from an earlier
	// window, replacing the idleGen counter.
	s.idleTimer.Reset(deadline)
}

// idleExpired fires when the anticipation window lapses without the
// active owner submitting: give the device to the next waiting queue.
func (s *CFQ) idleExpired() {
	if !s.idling {
		return
	}
	s.idling = false
	if o := s.nextOwner(); o != -1 {
		s.activate(o)
		s.dispatch()
	} else {
		s.active = -1
	}
}

// startOne pops the head of q and hands it to the device.
func (s *CFQ) startOne(q *cfqQueue) {
	p := q.fifo[0]
	q.fifo = append(q.fifo[:0], q.fifo[1:]...)
	q.observe(p.r, s.p.SeekyThreshold)
	s.inDevice++
	s.dev.Submit(p.r, func() {
		s.inDevice--
		s.outstanding--
		p.done()
		s.dispatch()
	})
}
