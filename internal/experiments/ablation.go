package experiments

import (
	"fmt"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/leveldb"
	"rootreplay/internal/metrics"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
	"rootreplay/internal/workload"
)

// AblationRow measures one mode set on the readrandom replay.
type AblationRow struct {
	Name    string
	Modes   core.ModeSet
	Edges   int
	MeanLen time.Duration
	Elapsed time.Duration
	Err     float64 // timing error vs original
	SemErr  int     // semantic errors
}

// AblationResult is the mode-set ablation: how each ROOT rule
// contributes constraint (edges), timing accuracy, and semantic
// correctness, from no cross-thread ordering at all up to program_seq.
type AblationResult struct {
	Original time.Duration
	Rows     []AblationRow
}

// Ablation traces the 4-thread readrandom workload once and replays it
// under a ladder of mode sets.
func Ablation(p Params) (*AblationResult, error) {
	w := &leveldb.ReadRandom{Threads: 4, OpsPerThread: p.DBOpsPerThread,
		Records: p.DBRecords, ValueBytes: p.DBValueBytes, Seed: 61}
	conf := hddConf()
	tr, snap, _, err := workload.TraceWorkload(conf, w)
	if err != nil {
		return nil, err
	}
	orig, err := workload.Run(conf, w)
	if err != nil {
		return nil, err
	}
	b, err := artc.Compile(tr, snap, core.DefaultModes())
	if err != nil {
		return nil, err
	}

	ladder := []struct {
		name  string
		modes core.ModeSet
	}{
		{"thread_seq only", core.ModeSet{}},
		{"+fd_stage", core.ModeSet{FDStage: true}},
		{"+fd_seq", core.ModeSet{FDStage: true, FDSeq: true}},
		{"+path_stage+name", core.ModeSet{FDStage: true, FDSeq: true, PathStageName: true}},
		{"+file_seq (default)", core.DefaultModes()},
		{"program_seq", core.ModeSet{ProgramSeq: true}},
	}

	res := &AblationResult{Original: orig}
	for _, step := range ladder {
		// GraphFor memoizes per mode set, so the replay below (which
		// overrides Modes) reuses this graph instead of rebuilding it.
		g := b.GraphFor(step.modes)
		st := g.Stats(b.Analysis)
		k := sim.NewKernel()
		sys := stack.New(k, conf)
		if err := artc.Init(sys, b, ""); err != nil {
			return nil, err
		}
		modes := step.modes
		rep, err := artc.Replay(sys, b, artc.Options{Method: artc.MethodARTC, Modes: &modes})
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", step.name, err)
		}
		res.Rows = append(res.Rows, AblationRow{
			Name:    step.name,
			Modes:   step.modes,
			Edges:   st.Edges,
			MeanLen: st.MeanLength,
			Elapsed: rep.Elapsed,
			Err:     metrics.RelError(rep.Elapsed, orig),
			SemErr:  rep.Errors,
		})
	}
	return res, nil
}

// Format renders the ladder.
func (r *AblationResult) Format() string {
	t := metrics.NewTable("mode set", "edges", "mean span", "elapsed", "timing err", "semantic err")
	for _, row := range r.Rows {
		t.Row(row.Name, row.Edges, row.MeanLen, row.Elapsed, metrics.PctString(row.Err), row.SemErr)
	}
	return fmt.Sprintf("Mode-set ablation (readrandom, original %v)\n%s", r.Original, t.String())
}
