package experiments

import "testing"

// TestParallelHarnessDeterministic runs Fig5a twice under forced
// parallelism and requires byte-identical formatted output.
func TestParallelHarnessDeterministic(t *testing.T) {
	a, err := Fig5a(Quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig5a(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if a.Format() != b.Format() {
		t.Fatalf("nondeterministic output:\n--- run 1:\n%s\n--- run 2:\n%s", a.Format(), b.Format())
	}
}
