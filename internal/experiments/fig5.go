package experiments

import (
	"fmt"
	"time"

	"rootreplay/internal/par"
	"rootreplay/internal/stack"
	"rootreplay/internal/workload"
)

// Fig5aResult is the workload-parallelism microbenchmark: traces of 1-,
// 2- and 8-thread random readers replayed on the tracing system.
type Fig5aResult struct {
	Comparisons []*Comparison // one per thread count
}

// Fig5a runs the experiment of Figure 5(a).
func Fig5a(p Params) (*Fig5aResult, error) {
	counts := []int{1, 2, 8}
	cmps := make([]*Comparison, len(counts))
	err := par.ForEach(len(counts), func(i int) error {
		w := &workload.RandomReaders{
			Threads: counts[i], ReadsPerThread: p.ReadsPerThread,
			FileBytes: p.FileBytes, Seed: 42,
		}
		conf := hddConf()
		conf.CachePages = p.CachePagesSmall
		cmp, err := compare(fmt.Sprintf("%d threads", counts[i]), w, conf, conf)
		if err != nil {
			return err
		}
		cmps[i] = cmp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig5aResult{Comparisons: cmps}, nil
}

// Format renders the figure's bar groups as a table.
func (r *Fig5aResult) Format() string {
	return formatComparisons("Figure 5(a): workload parallelism (random readers)", r.Comparisons)
}

// Fig5bResult is the disk-parallelism experiment: trace on one disk,
// replay on RAID-0, and vice versa.
type Fig5bResult struct {
	Comparisons []*Comparison
}

// Fig5b runs the experiment of Figure 5(b) with the 2-thread reader.
func Fig5b(p Params) (*Fig5bResult, error) {
	w := &workload.RandomReaders{
		Threads: 2, ReadsPerThread: p.ReadsPerThread, FileBytes: p.FileBytes, Seed: 43,
	}
	single := hddConf()
	single.CachePages = p.CachePagesSmall
	raid := hddConf()
	raid.Name = "linux-ext4-raid0"
	raid.Device = stack.DeviceRAID
	raid.CachePages = p.CachePagesSmall

	dirs := []struct {
		label    string
		src, tgt stack.Config
	}{
		{"1disk -> raid0", single, raid},
		{"raid0 -> 1disk", raid, single},
	}
	cmps, err := compareAll(dirs, w)
	if err != nil {
		return nil, err
	}
	return &Fig5bResult{Comparisons: cmps}, nil
}

// compareAll runs compare for each direction on the harness pool,
// returning comparisons in argument order.
func compareAll(dirs []struct {
	label    string
	src, tgt stack.Config
}, w workload.Workload) ([]*Comparison, error) {
	cmps := make([]*Comparison, len(dirs))
	err := par.ForEach(len(dirs), func(i int) error {
		cmp, err := compare(dirs[i].label, w, dirs[i].src, dirs[i].tgt)
		if err != nil {
			return err
		}
		cmps[i] = cmp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cmps, nil
}

// Format renders the result.
func (r *Fig5bResult) Format() string {
	return formatComparisons("Figure 5(b): disk parallelism (1 disk <-> RAID-0)", r.Comparisons)
}

// Fig5cResult is the cache-size experiment: trace with a big cache,
// replay with a small one, and vice versa.
type Fig5cResult struct {
	Comparisons []*Comparison
}

// Fig5c runs the experiment of Figure 5(c): thread 1 pre-reads its whole
// file sequentially, then random-reads it; thread 2 random-reads its own
// file; both on RAID-0 as in the paper.
func Fig5c(p Params) (*Fig5cResult, error) {
	w := &workload.CacheReaders{
		ReadsPerThread: p.ReadsPerThread, FileBytes: p.FileBytes, Seed: 44,
	}
	mk := func(pages int64, name string) stack.Config {
		c := hddConf()
		c.Name = name
		c.Device = stack.DeviceRAID
		c.CachePages = pages
		return c
	}
	big := mk(p.CachePagesBig, "raid0-bigcache")
	small := mk(p.CachePagesSmall, "raid0-smallcache")

	dirs := []struct {
		label    string
		src, tgt stack.Config
	}{
		{"big$ -> small$", big, small},
		{"small$ -> big$", small, big},
	}
	cmps, err := compareAll(dirs, w)
	if err != nil {
		return nil, err
	}
	return &Fig5cResult{Comparisons: cmps}, nil
}

// Format renders the result.
func (r *Fig5cResult) Format() string {
	return formatComparisons("Figure 5(c): cache size (big <-> small)", r.Comparisons)
}

// Fig5dResult is the scheduler-slice experiment: trace under one CFQ
// slice_sync, replay under another.
type Fig5dResult struct {
	Comparisons []*Comparison
}

// Fig5d runs the experiment of Figure 5(d): two sequential readers
// compete; slice_sync is 100ms on one machine and 1ms on the other.
func Fig5d(p Params) (*Fig5dResult, error) {
	w := &workload.SeqCompetitors{ReadsPerThread: p.SeqReads, FileBytes: p.FileBytes}
	mk := func(slice time.Duration, name string) stack.Config {
		c := hddConf()
		c.Name = name
		c.SliceSync = slice
		c.CachePages = p.CachePagesSmall
		return c
	}
	long := mk(100*time.Millisecond, "cfq-100ms")
	short := mk(1*time.Millisecond, "cfq-1ms")

	dirs := []struct {
		label    string
		src, tgt stack.Config
	}{
		{"100ms -> 1ms", long, short},
		{"1ms -> 100ms", short, long},
	}
	cmps, err := compareAll(dirs, w)
	if err != nil {
		return nil, err
	}
	return &Fig5dResult{Comparisons: cmps}, nil
}

// Format renders the result.
func (r *Fig5dResult) Format() string {
	return formatComparisons("Figure 5(d): CFQ slice_sync (100ms <-> 1ms)", r.Comparisons)
}
