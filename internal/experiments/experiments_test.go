package experiments

import (
	"strings"
	"testing"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
)

// The experiment tests assert the paper's qualitative results (who wins,
// rough factors, crossovers) at Quick scale.

func TestFig5aShape(t *testing.T) {
	res, err := Fig5a(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Comparisons) != 3 {
		t.Fatalf("groups = %d", len(res.Comparisons))
	}
	// Sublinear slowdown from 1 to 8 threads.
	t1 := res.Comparisons[0].Original
	t8 := res.Comparisons[2].Original
	if float64(t8) >= 8*float64(t1) {
		t.Errorf("no queue-depth benefit: 1t=%v 8t=%v", t1, t8)
	}
	// At 8 threads ARTC tracks the original; single overestimates badly.
	c8 := res.Comparisons[2]
	a, s := c8.runOf(artc.MethodARTC), c8.runOf(artc.MethodSingle)
	if a.Err > 0.20 {
		t.Errorf("ARTC error at 8t = %.1f%%", a.Err*100)
	}
	if s.Err < 2*a.Err || s.Elapsed < c8.Original {
		t.Errorf("single at 8t: err=%.1f%% elapsed=%v orig=%v; expected large overestimate",
			s.Err*100, s.Elapsed, c8.Original)
	}
	for _, c := range res.Comparisons {
		for _, r := range c.Runs {
			if r.Errors != 0 {
				t.Errorf("%s/%s: %d semantic errors", c.Label, r.Method, r.Errors)
			}
		}
	}
	if !strings.Contains(res.Format(), "8 threads") {
		t.Error("Format missing rows")
	}
}

func TestFig5bShape(t *testing.T) {
	res, err := Fig5b(Quick())
	if err != nil {
		t.Fatal(err)
	}
	toRAID := res.Comparisons[0]
	a, s := toRAID.runOf(artc.MethodARTC), toRAID.runOf(artc.MethodSingle)
	if a.Err > 0.20 {
		t.Errorf("ARTC error replaying onto RAID = %.1f%%", a.Err*100)
	}
	// Single-threaded replay cannot exploit the array's parallelism.
	if s.Err < a.Err {
		t.Errorf("single (%.1f%%) should be worse than ARTC (%.1f%%) onto RAID", s.Err*100, a.Err*100)
	}
	if s.Elapsed <= toRAID.Original {
		t.Errorf("single onto RAID should overestimate: %v vs %v", s.Elapsed, toRAID.Original)
	}
}

func TestFig5cShape(t *testing.T) {
	res, err := Fig5c(Quick())
	if err != nil {
		t.Fatal(err)
	}
	bigToSmall := res.Comparisons[0]
	smallToBig := res.Comparisons[1]
	aBS := bigToSmall.runOf(artc.MethodARTC)
	sBS := bigToSmall.runOf(artc.MethodSingle)
	tBS := bigToSmall.runOf(artc.MethodTemporal)
	// The paper's asymmetry: simple methods overestimate replaying the
	// big-cache trace on the small-cache target, but are fine in the
	// other direction.
	if aBS.Err > 0.25 {
		t.Errorf("ARTC big->small err = %.1f%%", aBS.Err*100)
	}
	if sBS.Elapsed <= bigToSmall.Original || sBS.Err < 1.5*aBS.Err {
		t.Errorf("single big->small should overestimate: single=%v (%.1f%%) orig=%v artc err %.1f%%",
			sBS.Elapsed, sBS.Err*100, bigToSmall.Original, aBS.Err*100)
	}
	if tBS.Elapsed <= bigToSmall.Original {
		t.Errorf("temporal big->small should overestimate: %v vs %v", tBS.Elapsed, bigToSmall.Original)
	}
	sSB := smallToBig.runOf(artc.MethodSingle)
	if sSB.Err > sBS.Err {
		t.Errorf("asymmetry missing: single small->big (%.1f%%) worse than big->small (%.1f%%)",
			sSB.Err*100, sBS.Err*100)
	}
}

func TestFig5dShape(t *testing.T) {
	res, err := Fig5d(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Comparisons {
		a := c.runOf(artc.MethodARTC)
		if a.Err > 0.25 {
			t.Errorf("%s: ARTC err = %.1f%%", c.Label, a.Err*100)
		}
	}
	// 100ms trace on 1ms target: simple replays reproduce the source's
	// scheduling, dramatically overestimating performance (finishing too
	// fast).
	longToShort := res.Comparisons[0]
	s := longToShort.runOf(artc.MethodSingle)
	tm := longToShort.runOf(artc.MethodTemporal)
	if s.Elapsed >= longToShort.Original {
		t.Errorf("single 100ms->1ms should finish too fast: %v vs orig %v", s.Elapsed, longToShort.Original)
	}
	if tm.Elapsed >= longToShort.Original {
		t.Errorf("temporal 100ms->1ms should finish too fast: %v vs orig %v", tm.Elapsed, longToShort.Original)
	}
	// 1ms trace on 100ms target: simple replays underestimate
	// performance (take too long relative to the original).
	shortToLong := res.Comparisons[1]
	s2 := shortToLong.runOf(artc.MethodSingle)
	if s2.Elapsed <= shortToLong.Original {
		t.Errorf("single 1ms->100ms should be too slow: %v vs orig %v", s2.Elapsed, shortToLong.Original)
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(Quick())
	if err != nil {
		t.Fatal(err)
	}
	var orig, artc100, single100 *Fig6Series
	for i := range res.Series {
		switch res.Series[i].Label {
		case "original":
			orig = &res.Series[i]
		case "artc/100ms-src":
			artc100 = &res.Series[i]
		case "single/100ms-src":
			single100 = &res.Series[i]
		}
	}
	if orig == nil || artc100 == nil || single100 == nil {
		t.Fatal("missing series")
	}
	// Original throughput rises with slice size.
	if orig.Throughput[len(orig.Throughput)-1] <= orig.Throughput[0]*1.3 {
		t.Errorf("no anticipation benefit in original: %v", orig.Throughput)
	}
	// ARTC tracks the target at the extremes; simple replay of the
	// 100ms-source trace dramatically overestimates at 1ms.
	if rel := artc100.Throughput[0] / orig.Throughput[0]; rel > 1.5 || rel < 0.6 {
		t.Errorf("artc at 1ms target off by %.2fx", rel)
	}
	if single100.Throughput[0] < 1.5*orig.Throughput[0] {
		t.Errorf("single/100ms-src at 1ms target should overestimate: %.1f vs %.1f",
			single100.Throughput[0], orig.Throughput[0])
	}
	if !strings.Contains(res.Format(), "original") {
		t.Error("format broken")
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Temporal.Edges == 0 || res.ARTC.Edges == 0 {
		t.Fatalf("edge counts: temporal=%d artc=%d", res.Temporal.Edges, res.ARTC.Edges)
	}
	// The paper's claim: ARTC's flexibility is long edges, not fewer
	// edges. Mean ARTC edge span must be far larger than temporal's.
	if res.ARTC.MeanLength < 10*res.Temporal.MeanLength {
		t.Errorf("ARTC mean edge span %v not >> temporal %v", res.ARTC.MeanLength, res.Temporal.MeanLength)
	}
	if !strings.Contains(res.Format(), "temporal") {
		t.Error("format broken")
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginalConcurrency < 1.5 {
		t.Errorf("original concurrency = %.2f; 4 threads should overlap", res.OriginalConcurrency)
	}
	artcRel := res.Relative(artc.MethodARTC)
	tempRel := res.Relative(artc.MethodTemporal)
	if artcRel <= tempRel {
		t.Errorf("ARTC concurrency (%.0f%%) not above temporal (%.0f%%)", artcRel*100, tempRel*100)
	}
	if artcRel < 0.7 {
		t.Errorf("ARTC achieves only %.0f%% of original concurrency", artcRel*100)
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full source/target matrix")
	}
	res, err := Fig7(Quick(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// 49 readrandom combos + 2 fillsync.
	if len(res.Workload["readrandom"]) != 49 {
		t.Fatalf("readrandom combos = %d", len(res.Workload["readrandom"]))
	}
	artcMean := res.MeanError(artc.MethodARTC)
	singleMean := res.MeanError(artc.MethodSingle)
	tempMean := res.MeanError(artc.MethodTemporal)
	t.Logf("mean errors: artc=%.1f%% temporal=%.1f%% single=%.1f%%", artcMean*100, tempMean*100, singleMean*100)
	t.Logf("worst decile: artc=%.1f%% temporal=%.1f%% single=%.1f%%",
		res.WorstDecileError(artc.MethodARTC)*100,
		res.WorstDecileError(artc.MethodTemporal)*100,
		res.WorstDecileError(artc.MethodSingle)*100)
	if artcMean >= tempMean {
		t.Errorf("ARTC mean error (%.1f%%) not below temporal (%.1f%%)", artcMean*100, tempMean*100)
	}
	if artcMean >= singleMean {
		t.Errorf("ARTC mean error (%.1f%%) not below single (%.1f%%)", artcMean*100, singleMean*100)
	}
	if res.WorstDecileError(artc.MethodARTC) >= res.WorstDecileError(artc.MethodSingle) {
		t.Error("ARTC should avoid extreme inaccuracy best")
	}
	// fillsync: every method accurate (single-writer pattern).
	for _, cell := range res.Workload["fillsync"] {
		for _, run := range cell.Runs {
			if run.Err > 0.30 {
				t.Errorf("fillsync %s->%s %s err = %.1f%%", cell.Source, cell.Target, run.Method, run.Err*100)
			}
		}
	}
	if res.CDF(artc.MethodARTC) == nil {
		t.Error("no CDF")
	}
}

func TestAblationShape(t *testing.T) {
	res, err := Ablation(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// No cross-thread ordering: races produce semantic errors and a
	// too-fast replay.
	if res.Rows[0].SemErr == 0 {
		t.Error("thread_seq-only replay should race")
	}
	if res.Rows[0].Elapsed >= res.Original {
		t.Error("underconstrained replay should finish too fast")
	}
	// Every constrained row is semantically clean.
	for _, row := range res.Rows[1:] {
		if row.SemErr != 0 {
			t.Errorf("%s: %d semantic errors", row.Name, row.SemErr)
		}
	}
	// program_seq's edges are consecutive-action edges: far shorter than
	// fd_stage's resource edges (the Figure 8 insight at mode level).
	last := res.Rows[len(res.Rows)-1]
	if last.Modes != (core.ModeSet{ProgramSeq: true}) {
		t.Fatal("ladder order changed")
	}
	if last.MeanLen*10 >= res.Rows[1].MeanLen {
		t.Errorf("program_seq mean span %v not << fd_stage %v", last.MeanLen, res.Rows[1].MeanLen)
	}
}
