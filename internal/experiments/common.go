// Package experiments regenerates every table and figure of the paper's
// evaluation (§5–§6) on the simulated substrate. Each ExpN function runs
// the workloads, traces, and replays an experiment needs and returns a
// typed result with a Format method printing rows like the paper's.
//
// Workload sizes are scaled by Params so the full suite runs in seconds
// of host time; Quick() shrinks them further for tests and benchmarks.
// Absolute numbers differ from the paper's testbed, but the comparisons
// the paper draws — which method wins, by what rough factor, where the
// crossovers fall — are preserved.
package experiments

import (
	"fmt"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/metrics"
	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
	"rootreplay/internal/workload"
)

// Params scale the experiment workloads.
type Params struct {
	// ReadsPerThread for the microbenchmark readers (paper: 1000).
	ReadsPerThread int
	// FileBytes for microbenchmark files (paper: 1 GiB).
	FileBytes int64
	// SeqReads for the anticipation competitors.
	SeqReads int
	// DBRecords / DBOpsPerThread / DBValueBytes for LevelDB.
	DBRecords      int
	DBOpsPerThread int
	DBValueBytes   int
	// MagritteScale for suite generation.
	MagritteScale float64
	// CachePagesBig / CachePagesSmall for the cache experiment.
	CachePagesBig, CachePagesSmall int64
}

// Default returns the standard (full) experiment scale.
func Default() Params {
	return Params{
		ReadsPerThread: 1000,
		FileBytes:      1 << 30,
		SeqReads:       4000,
		DBRecords:      30000,
		DBOpsPerThread: 400,
		DBValueBytes:   512,
		MagritteScale:  0.01,
		// 4 GiB vs 1.5 GiB in the paper; here files are 1 GiB, so pick
		// caches that flip thread 1's reads between all-hit and all-miss:
		// big covers both files, small covers neither.
		CachePagesBig:   3 << 18, // 3 GiB worth of 4 KiB pages
		CachePagesSmall: 1 << 16, // 256 MiB
	}
}

// Quick returns a reduced scale for tests and Go benchmarks.
func Quick() Params {
	return Params{
		ReadsPerThread:  120,
		FileBytes:       512 << 20,
		SeqReads:        1200,
		DBRecords:       6000,
		DBOpsPerThread:  80,
		DBValueBytes:    512,
		MagritteScale:   0.004,
		CachePagesBig:   3 << 17, // 1.5 GiB worth
		CachePagesSmall: 1 << 14, // 64 MiB
	}
}

// Methods compared throughout the evaluation, in presentation order.
var Methods = []artc.Method{artc.MethodSingle, artc.MethodTemporal, artc.MethodARTC}

// hddConf builds the baseline single-disk machine.
func hddConf() stack.Config {
	c := stack.DefaultConfig()
	c.Name = "linux-ext4-hdd"
	return c
}

// MethodRun is one replay measurement.
type MethodRun struct {
	Method  artc.Method
	Elapsed time.Duration
	Errors  int
	// Err is the relative timing error against the original program on
	// the target.
	Err    float64
	Report *artc.Report
}

// Comparison holds an original-vs-replays measurement for one
// source/target pair.
type Comparison struct {
	Label    string
	Original time.Duration
	Runs     []MethodRun
}

// runOf returns the named method's run.
func (c *Comparison) runOf(m artc.Method) *MethodRun {
	for i := range c.Runs {
		if c.Runs[i].Method == m {
			return &c.Runs[i]
		}
	}
	return nil
}

// compare traces w on src, replays it on tgt with every method, and runs
// the original program on tgt as ground truth.
func compare(label string, w workload.Workload, src, tgt stack.Config) (*Comparison, error) {
	tr, snap, _, err := workload.TraceWorkload(src, w)
	if err != nil {
		return nil, fmt.Errorf("%s: tracing: %w", label, err)
	}
	orig, err := workload.Run(tgt, w)
	if err != nil {
		return nil, fmt.Errorf("%s: original on target: %w", label, err)
	}
	cmp := &Comparison{Label: label, Original: orig}
	b, err := artc.Compile(tr, snap, core.DefaultModes())
	if err != nil {
		return nil, fmt.Errorf("%s: compiling: %w", label, err)
	}
	for _, m := range Methods {
		run, err := replayBench(b, tgt, m)
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %w", label, m, err)
		}
		run.Err = metrics.RelError(run.Elapsed, orig)
		cmp.Runs = append(cmp.Runs, *run)
	}
	return cmp, nil
}

// replayOnce compiles (with default modes) and replays on a fresh target.
func replayOnce(tr *trace.Trace, snap *snapshot.Snapshot, tgt stack.Config, m artc.Method) (*MethodRun, error) {
	b, err := artc.Compile(tr, snap, core.DefaultModes())
	if err != nil {
		return nil, err
	}
	return replayBench(b, tgt, m)
}

// replayBench replays an already-compiled benchmark on a fresh instance
// of the target system. The benchmark is only read, so one compiled
// benchmark can be replayed from many harness workers at once.
func replayBench(b *artc.Benchmark, tgt stack.Config, m artc.Method) (*MethodRun, error) {
	k := sim.NewKernel()
	sys := stack.New(k, tgt)
	if err := artc.Init(sys, b, ""); err != nil {
		return nil, err
	}
	rep, err := artc.Replay(sys, b, artc.Options{Method: m, Speed: artc.AFAP})
	if err != nil {
		return nil, err
	}
	return &MethodRun{Method: m, Elapsed: rep.Elapsed, Errors: rep.Errors, Report: rep}, nil
}

// formatComparisons renders original + per-method timings and errors.
func formatComparisons(title string, cmps []*Comparison) string {
	t := metrics.NewTable("case", "original", "single", "err", "temporal", "err", "artc", "err")
	for _, c := range cmps {
		s := c.runOf(artc.MethodSingle)
		tm := c.runOf(artc.MethodTemporal)
		a := c.runOf(artc.MethodARTC)
		t.Row(c.Label, c.Original,
			s.Elapsed, metrics.PctString(s.Err),
			tm.Elapsed, metrics.PctString(tm.Err),
			a.Elapsed, metrics.PctString(a.Err))
	}
	return title + "\n" + t.String()
}
