package experiments

import (
	"fmt"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/magritte"
	"rootreplay/internal/metrics"
	"rootreplay/internal/par"
	"rootreplay/internal/stack"
)

// Table3Result is the Magritte semantic-correctness table.
type Table3Result struct {
	Results []*magritte.Result
}

// Table3 runs the full 34-trace Magritte suite at the given scale,
// replaying each trace unconstrained and with ARTC on the paper's
// Linux/ext4/SSD target.
func Table3(p Params) (*Table3Result, error) {
	opts := magritte.DefaultSuiteOptions()
	opts.Gen.Scale = p.MagritteScale
	results, err := magritte.RunSuite(opts)
	if err != nil {
		return nil, err
	}
	return &Table3Result{Results: results}, nil
}

// Format renders the table.
func (r *Table3Result) Format() string {
	return "Table 3: replay failure counts (UC vs ARTC)\n" + magritte.FormatTable3(r.Results)
}

// TotalUCErrors sums unconstrained errors across the suite.
func (r *Table3Result) TotalUCErrors() int {
	n := 0
	for _, res := range r.Results {
		n += res.UCErrors
	}
	return n
}

// TotalARTCErrors sums ARTC errors across the suite.
func (r *Table3Result) TotalARTCErrors() int {
	n := 0
	for _, res := range r.Results {
		n += res.ARTCErrors
	}
	return n
}

// Fig10Row is one application's thread-time breakdown on HDD and SSD.
type Fig10Row struct {
	Name     string
	HDD      map[string]time.Duration
	HDDTotal time.Duration
	SSD      map[string]time.Duration
	SSDTotal time.Duration
}

// Fig10Result is the Magritte case study: thread-time by operation
// category on a disk and an SSD, normalized to HDD thread-time.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10 replays Magritte traces on HDD and SSD machines and splits
// thread-time by call category. traces limits how many of the 34 run
// (0 = all).
func Fig10(p Params, traces int) (*Fig10Result, error) {
	mk := func(dev stack.DeviceKind) stack.Config {
		return stack.Config{
			Name: "linux-ext4-" + string(dev), Platform: stack.Linux,
			Profile: stack.Ext4, Device: dev, Scheduler: stack.SchedCFQ,
		}
	}
	hdd, ssd := mk(stack.DeviceHDD), mk(stack.DeviceSSD)
	n := len(magritte.Specs)
	if traces > 0 && traces < n {
		n = traces
	}
	rows := make([]Fig10Row, n)
	err := par.ForEach(n, func(i int) error {
		spec := magritte.Specs[i]
		gen, err := magritte.Generate(spec, magritte.GenOptions{Scale: p.MagritteScale, Seed: int64(i) * 1000003})
		if err != nil {
			return err
		}
		b, err := artc.Compile(gen.Trace, gen.Snapshot, core.DefaultModes())
		if err != nil {
			return err
		}
		row := Fig10Row{Name: spec.FullName()}
		row.HDD, row.HDDTotal, err = magritte.ThreadTimeRun(b, hdd, true)
		if err != nil {
			return fmt.Errorf("fig10 %s hdd: %w", spec.FullName(), err)
		}
		row.SSD, row.SSDTotal, err = magritte.ThreadTimeRun(b, ssd, true)
		if err != nil {
			return fmt.Errorf("fig10 %s ssd: %w", spec.FullName(), err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Rows: rows}, nil
}

// Format renders per-trace normalized breakdowns.
func (r *Fig10Result) Format() string {
	header := []string{"trace", "device", "total(norm)"}
	header = append(header, magritte.Categories...)
	t := metrics.NewTable(header...)
	for _, row := range r.Rows {
		if row.HDDTotal == 0 {
			continue
		}
		norm := func(byCat map[string]time.Duration, total time.Duration) []any {
			cells := []any{fmt.Sprintf("%.2f", float64(total)/float64(row.HDDTotal))}
			for _, cat := range magritte.Categories {
				cells = append(cells, fmt.Sprintf("%.2f", float64(byCat[cat])/float64(row.HDDTotal)))
			}
			return cells
		}
		t.Row(append([]any{row.Name, "hdd"}, norm(row.HDD, row.HDDTotal)...)...)
		t.Row(append([]any{"", "ssd"}, norm(row.SSD, row.SSDTotal)...)...)
	}
	return "Figure 10: Magritte thread-time breakdown (normalized to HDD total)\n" + t.String()
}

// MeanSpeedup returns the mean HDD/SSD thread-time ratio (the paper
// reports 5-20x for most applications).
func (r *Fig10Result) MeanSpeedup() float64 {
	var ratios []float64
	for _, row := range r.Rows {
		if row.SSDTotal > 0 {
			ratios = append(ratios, float64(row.HDDTotal)/float64(row.SSDTotal))
		}
	}
	return metrics.Mean(ratios)
}
