package experiments

import (
	"fmt"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/leveldb"
	"rootreplay/internal/metrics"
	"rootreplay/internal/workload"
)

// Fig8Result compares the dependency structure ARTC enforces against
// temporal ordering on a 4-thread LevelDB readrandom trace: the paper's
// point is not that ARTC has slightly fewer edges but that its edges are
// far longer in trace time (9135 temporal edges of mean 10ms vs 6408
// ARTC edges of mean 8.9s).
type Fig8Result struct {
	Actions  int
	Temporal core.GraphStats
	ARTC     core.GraphStats
}

// Fig8 builds both graphs from one trace.
func Fig8(p Params) (*Fig8Result, error) {
	w := &leveldb.ReadRandom{Threads: 4, OpsPerThread: p.DBOpsPerThread,
		Records: p.DBRecords, ValueBytes: p.DBValueBytes, Seed: 81}
	conf := hddConf()
	tr, snap, _, err := workload.TraceWorkload(conf, w)
	if err != nil {
		return nil, err
	}
	b, err := artc.Compile(tr, snap, core.DefaultModes())
	if err != nil {
		return nil, err
	}
	tg := core.TemporalGraph(b.Analysis)
	return &Fig8Result{
		Actions:  len(tr.Records),
		Temporal: tg.Stats(b.Analysis),
		ARTC:     b.Graph.Stats(b.Analysis),
	}, nil
}

// Format renders the edge-count and edge-length comparison. Both the
// raw count (what the ordering rules emit) and the enforced count
// (after transitive reduction) are shown; the temporal baseline is
// never reduced, so its two counts coincide.
func (r *Fig8Result) Format() string {
	t := metrics.NewTable("ordering", "raw edges", "enforced edges", "mean edge span", "max edge span")
	t.Row("temporal", r.Temporal.Edges+r.Temporal.ReducedEdges, r.Temporal.Edges,
		r.Temporal.MeanLength, r.Temporal.MaxLength)
	t.Row("artc", r.ARTC.Edges+r.ARTC.ReducedEdges, r.ARTC.Edges,
		r.ARTC.MeanLength, r.ARTC.MaxLength)
	return fmt.Sprintf("Figure 8: dependency graphs over a %d-action 4-thread readrandom trace\n%s",
		r.Actions, t.String())
}

// Fig9Result measures system-call overlap: the mean number of
// outstanding calls during the original run and during each replay,
// normalized to the original (ARTC achieved 94% of the original's
// concurrency in the paper, temporal ordering 60%).
type Fig9Result struct {
	OriginalConcurrency float64
	Replay              map[artc.Method]float64 // absolute concurrency
}

// Fig9 runs the 4-thread readrandom concurrency measurement.
func Fig9(p Params) (*Fig9Result, error) {
	w := &leveldb.ReadRandom{Threads: 4, OpsPerThread: p.DBOpsPerThread,
		Records: p.DBRecords, ValueBytes: p.DBValueBytes, Seed: 91}
	conf := hddConf()

	// Original concurrency: total in-call thread time / elapsed.
	tr, snap, _, err := workload.TraceWorkload(conf, w)
	if err != nil {
		return nil, err
	}
	var inCall time.Duration
	for _, rec := range tr.Records {
		inCall += rec.End - rec.Start
	}
	elapsed := tr.Duration()
	res := &Fig9Result{Replay: make(map[artc.Method]float64)}
	if elapsed > 0 {
		res.OriginalConcurrency = float64(inCall) / float64(elapsed)
	}
	for _, m := range []artc.Method{artc.MethodTemporal, artc.MethodARTC} {
		run, err := replayOnce(tr, snap, conf, m)
		if err != nil {
			return nil, err
		}
		res.Replay[m] = run.Report.Concurrency()
	}
	return res, nil
}

// Relative returns a replay's concurrency as a fraction of the
// original's.
func (r *Fig9Result) Relative(m artc.Method) float64 {
	if r.OriginalConcurrency == 0 {
		return 0
	}
	return r.Replay[m] / r.OriginalConcurrency
}

// Format renders the concurrency comparison.
func (r *Fig9Result) Format() string {
	t := metrics.NewTable("run", "mean outstanding calls", "% of original")
	t.Row("original", fmt.Sprintf("%.2f", r.OriginalConcurrency), "100.0%")
	for _, m := range []artc.Method{artc.MethodARTC, artc.MethodTemporal} {
		t.Row(string(m), fmt.Sprintf("%.2f", r.Replay[m]), metrics.PctString(r.Relative(m)))
	}
	return "Figure 9: system-call concurrency, 4-thread readrandom\n" + t.String()
}
