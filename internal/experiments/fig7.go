package experiments

import (
	"fmt"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/leveldb"
	"rootreplay/internal/metrics"
	"rootreplay/internal/par"
	"rootreplay/internal/stack"
	"rootreplay/internal/workload"
)

// LevelDBConfigs are the seven machine configurations of §5.2.2: four
// file systems on a disk, a RAID-0 array, a small-cache machine, and an
// SSD.
func LevelDBConfigs(p Params) []stack.Config {
	mk := func(name string, prof stack.FSProfile, dev stack.DeviceKind, cache int64) stack.Config {
		return stack.Config{
			Name: name, Platform: stack.Linux, Profile: prof,
			Device: dev, Scheduler: stack.SchedCFQ, CachePages: cache,
		}
	}
	big := p.CachePagesBig
	small := p.CachePagesSmall / 8
	if small < 1024 {
		small = 1024
	}
	return []stack.Config{
		mk("ext4-hdd", stack.Ext4, stack.DeviceHDD, big),
		mk("ext3-hdd", stack.Ext3, stack.DeviceHDD, big),
		mk("jfs-hdd", stack.JFS, stack.DeviceHDD, big),
		mk("xfs-hdd", stack.XFS, stack.DeviceHDD, big),
		mk("ext4-raid0", stack.Ext4, stack.DeviceRAID, big),
		mk("ext4-small$", stack.Ext4, stack.DeviceHDD, small),
		mk("ext4-ssd", stack.Ext4, stack.DeviceSSD, big),
	}
}

// Fig7Cell is one source/target replay measurement.
type Fig7Cell struct {
	Source, Target string
	Original       time.Duration
	Runs           []MethodRun
}

// Fig7Result holds the full cross-product for both workloads plus the
// error distributions of Figure 7(b).
type Fig7Result struct {
	Workload map[string][]*Fig7Cell // "fillsync", "readrandom"
	// Errors per method across all replays (98 at full scale: 49 combos
	// x 2 workloads).
	Errors map[artc.Method][]float64
}

// Fig7 runs the LevelDB source/target matrix. fillsyncPairs limits the
// fillsync matrix (the paper shows one combination, noting the rest are
// similar); pass 0 for the full 49.
func Fig7(p Params, fillsyncPairs int) (*Fig7Result, error) {
	configs := LevelDBConfigs(p)
	res := &Fig7Result{
		Workload: make(map[string][]*Fig7Cell),
		Errors:   make(map[artc.Method][]float64),
	}

	type wl struct {
		name  string
		make  func() workload.Workload
		limit int
	}
	workloads := []wl{
		{"fillsync", func() workload.Workload {
			return &leveldb.FillSync{Threads: 8, OpsPerThread: p.DBOpsPerThread, ValueBytes: p.DBValueBytes, Seed: 71}
		}, fillsyncPairs},
		{"readrandom", func() workload.Workload {
			return &leveldb.ReadRandom{Threads: 8, OpsPerThread: p.DBOpsPerThread,
				Records: p.DBRecords, ValueBytes: p.DBValueBytes, Seed: 72}
		}, 0},
	}

	for _, w := range workloads {
		// Enumerate the (source, target) cells up front, in the same
		// source-major order (and with the same pair limit) the serial
		// loop used, so the harness can fan them out while the assembled
		// tables keep their order.
		type pair struct{ src, tgt int }
		var cells []pair
		for si := range configs {
			for ti := range configs {
				if w.limit > 0 && len(cells) >= w.limit {
					break
				}
				cells = append(cells, pair{si, ti})
			}
			if w.limit > 0 && len(cells) >= w.limit {
				break
			}
		}

		// Original program timing per target (reused across sources).
		origByTarget := make([]time.Duration, len(configs))
		if err := par.ForEach(len(configs), func(ti int) error {
			d, err := workload.Run(configs[ti], w.make())
			if err != nil {
				return fmt.Errorf("fig7 %s original on %s: %w", w.name, configs[ti].Name, err)
			}
			origByTarget[ti] = d
			return nil
		}); err != nil {
			return nil, err
		}

		// Trace and compile once per needed source. Each cell then
		// replays a shared, read-only benchmark, instead of recompiling
		// the source trace per (target, method).
		var srcs []int
		needed := make([]bool, len(configs))
		for _, c := range cells {
			if !needed[c.src] {
				needed[c.src] = true
				srcs = append(srcs, c.src)
			}
		}
		benches := make([]*artc.Benchmark, len(configs))
		if err := par.ForEach(len(srcs), func(k int) error {
			si := srcs[k]
			tr, snap, _, err := workload.TraceWorkload(configs[si], w.make())
			if err != nil {
				return fmt.Errorf("fig7 %s tracing on %s: %w", w.name, configs[si].Name, err)
			}
			b, err := artc.Compile(tr, snap, core.DefaultModes())
			if err != nil {
				return fmt.Errorf("fig7 %s compiling %s trace: %w", w.name, configs[si].Name, err)
			}
			benches[si] = b
			return nil
		}); err != nil {
			return nil, err
		}

		results := make([]*Fig7Cell, len(cells))
		if err := par.ForEach(len(cells), func(ci int) error {
			c := cells[ci]
			src, tgt := configs[c.src], configs[c.tgt]
			cell := &Fig7Cell{Source: src.Name, Target: tgt.Name, Original: origByTarget[c.tgt]}
			for _, m := range Methods {
				run, err := replayBench(benches[c.src], tgt, m)
				if err != nil {
					return fmt.Errorf("fig7 %s %s->%s %s: %w", w.name, src.Name, tgt.Name, m, err)
				}
				run.Err = metrics.RelError(run.Elapsed, cell.Original)
				cell.Runs = append(cell.Runs, *run)
			}
			results[ci] = cell
			return nil
		}); err != nil {
			return nil, err
		}
		for _, cell := range results {
			res.Workload[w.name] = append(res.Workload[w.name], cell)
			for i, m := range Methods {
				res.Errors[m] = append(res.Errors[m], cell.Runs[i].Err)
			}
		}
	}
	return res, nil
}

// MeanError returns a method's mean timing error across all replays.
func (r *Fig7Result) MeanError(m artc.Method) float64 {
	return metrics.Mean(r.Errors[m])
}

// WorstDecileError returns the mean of a method's worst 10% of errors
// (the paper's extreme-inaccuracy comparison).
func (r *Fig7Result) WorstDecileError(m artc.Method) float64 {
	return metrics.TailMean(r.Errors[m], 0.10)
}

// Format renders the per-combination table and the Figure 7(b) summary.
func (r *Fig7Result) Format() string {
	out := ""
	for _, name := range []string{"fillsync", "readrandom"} {
		cells := r.Workload[name]
		if len(cells) == 0 {
			continue
		}
		t := metrics.NewTable("src -> tgt", "original", "single", "err", "temporal", "err", "artc", "err")
		for _, c := range cells {
			row := []any{c.Source + " -> " + c.Target, c.Original}
			for _, m := range Methods {
				for i := range c.Runs {
					if c.Runs[i].Method == m {
						row = append(row, c.Runs[i].Elapsed, metrics.PctString(c.Runs[i].Err))
					}
				}
			}
			t.Row(row...)
		}
		out += fmt.Sprintf("Figure 7(a) [%s]:\n%s\n", name, t.String())
	}
	s := metrics.NewTable("method", "mean err", "worst-decile err", "replays")
	for _, m := range Methods {
		s.Row(string(m), metrics.PctString(r.MeanError(m)), metrics.PctString(r.WorstDecileError(m)), len(r.Errors[m]))
	}
	out += "Figure 7(b): timing-error distribution\n" + s.String()
	return out
}

// CDF returns the error CDF for a method (the curve of Figure 7(b)).
func (r *Fig7Result) CDF(m artc.Method) []metrics.CDFPoint {
	return metrics.CDF(r.Errors[m])
}

// Fig7Pair runs a single source/target combination of the readrandom
// workload (indices into LevelDBConfigs), for quick spot checks and
// benchmarks.
func Fig7Pair(p Params, srcIdx, tgtIdx int) (*Fig7Cell, error) {
	configs := LevelDBConfigs(p)
	src, tgt := configs[srcIdx], configs[tgtIdx]
	w := &leveldb.ReadRandom{Threads: 8, OpsPerThread: p.DBOpsPerThread,
		Records: p.DBRecords, ValueBytes: p.DBValueBytes, Seed: 72}
	orig, err := workload.Run(tgt, w)
	if err != nil {
		return nil, err
	}
	w2 := &leveldb.ReadRandom{Threads: 8, OpsPerThread: p.DBOpsPerThread,
		Records: p.DBRecords, ValueBytes: p.DBValueBytes, Seed: 72}
	tr, snap, _, err := workload.TraceWorkload(src, w2)
	if err != nil {
		return nil, err
	}
	cell := &Fig7Cell{Source: src.Name, Target: tgt.Name, Original: orig}
	for _, m := range Methods {
		run, err := replayOnce(tr, snap, tgt, m)
		if err != nil {
			return nil, err
		}
		run.Err = metrics.RelError(run.Elapsed, orig)
		cell.Runs = append(cell.Runs, *run)
	}
	return cell, nil
}
