package experiments

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/magritte"
	"rootreplay/internal/obs"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
)

// TestChromeExportDeterministic replays a Magritte benchmark twice with
// the observability recorder enabled under forced parallelism and
// requires the Chrome trace_event export — spans, flow events, counter
// samples, and the critical-path report — to be byte-identical. The
// export is the full recorded history of the replay, so this is the
// strongest determinism check the repo has: any scheduling or probe
// nondeterminism shows up as a byte diff.
func TestChromeExportDeterministic(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))

	spec, ok := magritte.SpecByName("pages_docphoto15")
	if !ok {
		t.Fatal("spec missing")
	}
	gen, err := magritte.Generate(spec, magritte.GenOptions{Scale: 0.02, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := artc.Compile(gen.Trace, gen.Snapshot, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}

	run := func() ([]byte, string) {
		rec := obs.NewRecorder(0, 0)
		k := sim.NewKernel()
		sys := stack.New(k, magritte.DefaultSuiteOptions().Target)
		if err := magritte.InitTarget(sys, b, true); err != nil {
			t.Fatal(err)
		}
		rep, err := artc.Replay(sys, b, artc.Options{Obs: rec})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), rep.CriticalPath(b).Format(0)
	}

	export1, crit1 := run()
	export2, crit2 := run()
	if !bytes.Equal(export1, export2) {
		t.Fatal("Chrome trace export differs between identical replays")
	}
	if crit1 != crit2 {
		t.Fatalf("critical-path report differs between identical replays:\n--- run 1:\n%s\n--- run 2:\n%s", crit1, crit2)
	}

	// The export must be loadable JSON with the expected event shapes.
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			PID int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(export1, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no events")
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph]++
	}
	for _, ph := range []string{"M", "X", "C", "s", "f"} {
		if phases[ph] == 0 {
			t.Fatalf("export has no %q events: %v", ph, phases)
		}
	}
}
