package experiments

import (
	"fmt"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/metrics"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
	"rootreplay/internal/workload"
)

// Fig6Slices is the slice_sync sweep of Figure 6.
var Fig6Slices = []time.Duration{
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond,
}

// Fig6Series is one line of Figure 6: throughput (MB/s) at each target
// slice value.
type Fig6Series struct {
	Label      string
	Throughput []float64 // MB/s, aligned with Fig6Slices
}

// Fig6Result holds the original's line plus three replay lines for each
// of the two source traces (slice_sync 1ms and 100ms).
type Fig6Result struct {
	Series []Fig6Series
}

// Fig6 runs the anticipation sweep: the original program at every target
// slice, and replays of a 1ms-source trace and a 100ms-source trace at
// every target slice with each method.
func Fig6(p Params) (*Fig6Result, error) {
	w := &workload.SeqCompetitors{ReadsPerThread: p.SeqReads, FileBytes: p.FileBytes}
	totalMB := float64(2*p.SeqReads*4096) / 1e6
	mk := func(slice time.Duration) stack.Config {
		c := hddConf()
		c.Name = fmt.Sprintf("cfq-%v", slice)
		c.SliceSync = slice
		c.CachePages = p.CachePagesSmall
		return c
	}

	res := &Fig6Result{}
	orig := Fig6Series{Label: "original"}
	for _, s := range Fig6Slices {
		d, err := workload.Run(mk(s), w)
		if err != nil {
			return nil, err
		}
		orig.Throughput = append(orig.Throughput, totalMB/d.Seconds())
	}
	res.Series = append(res.Series, orig)

	type src struct {
		label string
		slice time.Duration
	}
	for _, s := range []src{{"1ms-src", time.Millisecond}, {"100ms-src", 100 * time.Millisecond}} {
		tr, snap, _, err := workload.TraceWorkload(mk(s.slice), w)
		if err != nil {
			return nil, err
		}
		for _, m := range Methods {
			series := Fig6Series{Label: fmt.Sprintf("%s/%s", m, s.label)}
			for _, target := range Fig6Slices {
				d, err := fig6Replay(tr, snap, mk(target), m)
				if err != nil {
					return nil, err
				}
				series.Throughput = append(series.Throughput, totalMB/d.Seconds())
			}
			res.Series = append(res.Series, series)
		}
	}
	return res, nil
}

func fig6Replay(tr *trace.Trace, snap *snapshot.Snapshot, tgt stack.Config, m artc.Method) (time.Duration, error) {
	run, err := replayOnce(tr, snap, tgt, m)
	if err != nil {
		return 0, err
	}
	return run.Elapsed, nil
}

// Format renders the sweep as a table: one row per series, one column
// per slice value.
func (r *Fig6Result) Format() string {
	header := []string{"series"}
	for _, s := range Fig6Slices {
		header = append(header, s.String())
	}
	t := metrics.NewTable(header...)
	for _, s := range r.Series {
		cells := []any{s.Label}
		for _, v := range s.Throughput {
			cells = append(cells, fmt.Sprintf("%.1f", v))
		}
		t.Row(cells...)
	}
	return "Figure 6: throughput (MB/s) vs target slice_sync\n" + t.String()
}
