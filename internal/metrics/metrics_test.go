package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRelError(t *testing.T) {
	if !almostEq(RelError(110, 100), 0.1) {
		t.Fatal("over")
	}
	if !almostEq(RelError(90, 100), 0.1) {
		t.Fatal("under")
	}
	if RelError(50, 0) != 0 {
		t.Fatal("zero want")
	}
	if RelError(100, 100) != 0 {
		t.Fatal("exact")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty")
	}
	if !almostEq(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0.5) != 3 {
		t.Fatalf("p50 = %v", Percentile(xs, 0.5))
	}
	if Percentile(xs, 1.0) != 5 {
		t.Fatal("p100")
	}
	if Percentile(xs, 0.0) != 1 {
		t.Fatal("p0 clamps to min")
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("input mutated")
	}
}

func TestTailMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if !almostEq(TailMean(xs, 0.10), 10) {
		t.Fatalf("worst decile = %v", TailMean(xs, 0.10))
	}
	if !almostEq(TailMean(xs, 0.20), 9.5) {
		t.Fatalf("worst quintile = %v", TailMean(xs, 0.20))
	}
	if TailMean(nil, 0.1) != 0 {
		t.Fatal("empty")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatal("length")
	}
	if pts[0].X != 1 || !almostEq(pts[0].F, 1.0/3) {
		t.Fatalf("first = %+v", pts[0])
	}
	if pts[2].X != 3 || !almostEq(pts[2].F, 1) {
		t.Fatalf("last = %+v", pts[2])
	}
	if CDF(nil) != nil {
		t.Fatal("empty")
	}
}

// Property: a CDF is monotone in both coordinates and ends at 1.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		pts := CDF(xs)
		if len(xs) == 0 {
			return pts == nil
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].F <= pts[i-1].F {
				return false
			}
		}
		return almostEq(pts[len(pts)-1].F, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "value", "time")
	tb.Row("alpha", 1.25, 1500*time.Millisecond)
	tb.Row("averyverylongname", 100, 3*time.Microsecond)
	s := tb.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[2], "1.2") || !strings.Contains(lines[2], "1.50s") {
		t.Fatalf("row formatting: %q", lines[2])
	}
	if !strings.Contains(lines[3], "3µs") {
		t.Fatalf("µs formatting: %q", lines[3])
	}
	// Columns align: header and separator have the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("misaligned header/separator:\n%s", s)
	}
}

func TestPctString(t *testing.T) {
	if PctString(0.106) != "10.6%" {
		t.Fatalf("got %s", PctString(0.106))
	}
	if PctString(0) != "0.0%" {
		t.Fatal("zero")
	}
}

func TestDurationFormats(t *testing.T) {
	tb := NewTable("d")
	tb.Row(2 * time.Millisecond)
	tb.Row(25 * time.Second)
	s := tb.String()
	if !strings.Contains(s, "2.0ms") || !strings.Contains(s, "25.00s") {
		t.Fatalf("duration formats:\n%s", s)
	}
}
