// Package metrics provides the small statistics the evaluation reports:
// relative timing error, means, percentiles/CDFs, and fixed-width text
// tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// RelError returns |got-want| / want; zero if want is zero.
func RelError(got, want time.Duration) float64 {
	if want == 0 {
		return 0
	}
	return math.Abs(float64(got-want)) / float64(want)
}

// Mean averages a sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-quantile (0..1) of xs using nearest-rank on a
// sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// TailMean averages the worst (largest) fraction p of the sample — the
// paper's "least accurate 10% of each method's replays".
func TailMean(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := int(math.Ceil(p * float64(len(s))))
	if n < 1 {
		n = 1
	}
	return Mean(s[len(s)-n:])
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	F float64 // cumulative fraction <= X
}

// CDF computes the empirical CDF of xs.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, x := range s {
		out[i] = CDFPoint{X: x, F: float64(i+1) / float64(len(s))}
	}
	return out
}

// Table accumulates rows for fixed-width text output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case time.Duration:
			row[i] = fmtDur(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// fmtDur renders a duration with benchmark-friendly precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}

// FmtDur renders a duration with the same benchmark-friendly precision
// Table uses, for report renderers that format cells themselves.
func FmtDur(d time.Duration) string { return fmtDur(d) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// PctString formats a relative error as "+12.3%" / "-4.5%" given signed
// difference, or "12.3%" for magnitudes.
func PctString(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}
