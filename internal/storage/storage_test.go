package storage

import (
	"testing"
	"testing/quick"
	"time"

	"rootreplay/internal/sim"
)

// submitAndRun submits all requests at time zero and runs the kernel,
// returning completion times in submission order.
func submitAndRun(t *testing.T, dev Device, reqs []*Request) []time.Duration {
	t.Helper()
	times := make([]time.Duration, len(reqs))
	k := kernelOf(dev)
	for i, r := range reqs {
		i := i
		dev.Submit(r, func() { times[i] = k.Now() })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return times
}

func kernelOf(dev Device) *sim.Kernel {
	switch d := dev.(type) {
	case *HDD:
		return d.k
	case *SSD:
		return d.k
	case *RAID0:
		return kernelOf(d.members[0])
	}
	panic("unknown device")
}

func TestHDDSequentialFasterThanRandom(t *testing.T) {
	p := DefaultHDD()

	k1 := sim.NewKernel()
	seqDev := NewHDD(k1, "seq", p)
	var seqReqs []*Request
	for i := 0; i < 64; i++ {
		seqReqs = append(seqReqs, &Request{Kind: Read, LBA: int64(i), Blocks: 1})
	}
	seqTimes := submitAndRun(t, seqDev, seqReqs)
	seqTotal := seqTimes[len(seqTimes)-1]

	k2 := sim.NewKernel()
	rndDev := NewHDD(k2, "rnd", p)
	var rndReqs []*Request
	for i := 0; i < 64; i++ {
		lba := int64(i*1000003) % p.Blocks
		rndReqs = append(rndReqs, &Request{Kind: Read, LBA: lba, Blocks: 1})
	}
	rndTimes := submitAndRun(t, rndDev, rndReqs)
	rndTotal := rndTimes[len(rndTimes)-1]

	if seqTotal*10 > rndTotal {
		t.Fatalf("sequential %v not much faster than random %v", seqTotal, rndTotal)
	}
}

func TestHDDQueueDepthImprovesThroughput(t *testing.T) {
	// Service N random reads one at a time vs. all queued at once; the
	// elevator should reduce total time when it can pick among many.
	p := DefaultHDD()
	lbas := make([]int64, 64)
	for i := range lbas {
		lbas[i] = (int64(i)*2654435761 + 12345) % p.Blocks
	}

	// Depth 1: submit each after the previous completes.
	k1 := sim.NewKernel()
	d1 := NewHDD(k1, "d1", p)
	var serialTotal time.Duration
	var submitNext func(i int)
	submitNext = func(i int) {
		if i == len(lbas) {
			serialTotal = k1.Now()
			return
		}
		d1.Submit(&Request{Kind: Read, LBA: lbas[i], Blocks: 1}, func() { submitNext(i + 1) })
	}
	submitNext(0)
	if err := k1.Run(); err != nil {
		t.Fatal(err)
	}

	// Deep queue: all at once.
	k2 := sim.NewKernel()
	d2 := NewHDD(k2, "d2", p)
	var reqs []*Request
	for _, l := range lbas {
		reqs = append(reqs, &Request{Kind: Read, LBA: l, Blocks: 1})
	}
	times := submitAndRun(t, d2, reqs)
	var deepTotal time.Duration
	for _, c := range times {
		if c > deepTotal {
			deepTotal = c
		}
	}

	if deepTotal >= serialTotal {
		t.Fatalf("deep queue (%v) not faster than serial (%v)", deepTotal, serialTotal)
	}
	if float64(deepTotal) > 0.85*float64(serialTotal) {
		t.Fatalf("expected >=15%% improvement from queueing: deep %v vs serial %v", deepTotal, serialTotal)
	}
}

func TestHDDStats(t *testing.T) {
	k := sim.NewKernel()
	d := NewHDD(k, "d", DefaultHDD())
	d.Submit(&Request{Kind: Read, LBA: 0, Blocks: 4}, func() {})
	d.Submit(&Request{Kind: Write, LBA: 100, Blocks: 2}, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.BlocksRead != 4 || s.BlocksWrite != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BusyTime <= 0 {
		t.Fatal("no busy time recorded")
	}
}

func TestHDDEmptyRequestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	k := sim.NewKernel()
	d := NewHDD(k, "d", DefaultHDD())
	d.Submit(&Request{Kind: Read, LBA: 0, Blocks: 0}, func() {})
}

func TestSSDParallelism(t *testing.T) {
	p := DefaultSSD()
	p.Channels = 4
	p.ReadLatency = time.Millisecond
	p.BandwidthBs = 1 << 40 // make transfer negligible

	k := sim.NewKernel()
	d := NewSSD(k, "ssd", p)
	var reqs []*Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, &Request{Kind: Read, LBA: int64(i * 100), Blocks: 1})
	}
	times := submitAndRun(t, d, reqs)
	var last time.Duration
	for _, c := range times {
		if c > last {
			last = c
		}
	}
	// 8 requests, 4 channels, 1ms each => 2ms (+tiny transfer).
	if last < 2*time.Millisecond || last > 2*time.Millisecond+time.Millisecond/10 {
		t.Fatalf("8 reqs on 4 channels took %v, want ~2ms", last)
	}
}

func TestSSDFasterThanHDDRandom(t *testing.T) {
	lbas := make([]int64, 32)
	for i := range lbas {
		lbas[i] = (int64(i)*7919 + 13) * 4096 % DefaultHDD().Blocks
	}
	mk := func(dev Device) time.Duration {
		var reqs []*Request
		for _, l := range lbas {
			reqs = append(reqs, &Request{Kind: Read, LBA: l, Blocks: 1})
		}
		times := submitAndRun(t, dev, reqs)
		var last time.Duration
		for _, c := range times {
			if c > last {
				last = c
			}
		}
		return last
	}
	kh := sim.NewKernel()
	hdd := mk(NewHDD(kh, "h", DefaultHDD()))
	ks := sim.NewKernel()
	ssd := mk(NewSSD(ks, "s", DefaultSSD()))
	if ssd*20 > hdd {
		t.Fatalf("SSD (%v) should be >20x faster than HDD (%v) on random reads", ssd, hdd)
	}
}

func TestRAID0SplitsAcrossMembers(t *testing.T) {
	k := sim.NewKernel()
	m0 := NewHDD(k, "m0", DefaultHDD())
	m1 := NewHDD(k, "m1", DefaultHDD())
	r := NewRAID0("raid", 128, m0, m1) // 512 KiB chunks

	// A 256-block (1 MiB) read spans two full chunks: one per member.
	done := false
	r.Submit(&Request{Kind: Read, LBA: 0, Blocks: 256}, func() { done = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("request did not complete")
	}
	s0, s1 := m0.Stats(), m1.Stats()
	if s0.BlocksRead != 128 || s1.BlocksRead != 128 {
		t.Fatalf("member reads = %d, %d; want 128 each", s0.BlocksRead, s1.BlocksRead)
	}
}

func TestRAID0ParallelSpeedup(t *testing.T) {
	// Two concurrent streams at distant addresses: a 2-member stripe
	// should service them roughly in parallel.
	run := func(members int) time.Duration {
		k := sim.NewKernel()
		var devs []Device
		for i := 0; i < members; i++ {
			devs = append(devs, NewHDD(k, "m", DefaultHDD()))
		}
		var dev Device = devs[0]
		if members > 1 {
			dev = NewRAID0("raid", 128, devs...)
		}
		var reqs []*Request
		for i := 0; i < 32; i++ {
			// Alternate between two far-apart regions, chunk-aligned.
			base := int64(0)
			if i%2 == 1 {
				base = 128 // second chunk -> second member on 2-disk raid
			}
			reqs = append(reqs, &Request{Kind: Read, LBA: base + int64(i/2)*256, Blocks: 8})
		}
		var last time.Duration
		times := make([]time.Duration, len(reqs))
		for i, r := range reqs {
			i := i
			dev.Submit(r, func() { times[i] = k.Now() })
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		for _, c := range times {
			if c > last {
				last = c
			}
		}
		return last
	}
	single := run(1)
	raid := run(2)
	if float64(raid) > 0.75*float64(single) {
		t.Fatalf("raid %v not sufficiently faster than single %v", raid, single)
	}
}

func TestRAID0Blocks(t *testing.T) {
	k := sim.NewKernel()
	p := DefaultHDD()
	m0 := NewHDD(k, "m0", p)
	m1 := NewHDD(k, "m1", p)
	r := NewRAID0("raid", 128, m0, m1)
	if r.Blocks() != 2*p.Blocks {
		t.Fatalf("Blocks() = %d, want %d", r.Blocks(), 2*p.Blocks)
	}
	if r.Parallelism() != 2 {
		t.Fatalf("Parallelism() = %d, want 2", r.Parallelism())
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Kind.String broken")
	}
}

// Property: every submitted request completes exactly once, regardless of
// address pattern, on each device type.
func TestQuickAllRequestsComplete(t *testing.T) {
	f := func(addrs []uint32, write bool) bool {
		if len(addrs) == 0 {
			return true
		}
		if len(addrs) > 100 {
			addrs = addrs[:100]
		}
		k := sim.NewKernel()
		hdd0 := NewHDD(k, "h0", DefaultHDD())
		hdd1 := NewHDD(k, "h1", DefaultHDD())
		raid := NewRAID0("r", 128, hdd0, hdd1)
		ssd := NewSSD(k, "s", DefaultSSD())
		for _, dev := range []Device{raid, ssd} {
			completions := 0
			kind := Read
			if write {
				kind = Write
			}
			for _, a := range addrs {
				lba := int64(a) % (dev.Blocks() - 64)
				dev.Submit(&Request{Kind: kind, LBA: lba, Blocks: int(a%8) + 1}, func() { completions++ })
			}
			if err := k.Run(); err != nil {
				return false
			}
			if completions != len(addrs) {
				return false
			}
			if dev.Outstanding() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: RAID0 sub-request block counts always sum to the parent's.
func TestQuickRAIDConservation(t *testing.T) {
	f := func(lba uint32, blocks uint8, chunk uint8, members uint8) bool {
		nm := int(members%3) + 2
		cb := int64(chunk%64) + 1
		nb := int(blocks%200) + 1
		k := sim.NewKernel()
		var devs []Device
		for i := 0; i < nm; i++ {
			devs = append(devs, NewSSD(k, "m", DefaultSSD()))
		}
		r := NewRAID0("raid", cb, devs...)
		done := false
		r.Submit(&Request{Kind: Read, LBA: int64(lba % 100000), Blocks: nb}, func() { done = true })
		if err := k.Run(); err != nil {
			return false
		}
		var total int64
		for _, d := range devs {
			total += d.Stats().BlocksRead
		}
		return done && total == int64(nb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHDDRandomReads(b *testing.B) {
	k := sim.NewKernel()
	d := NewHDD(k, "d", DefaultHDD())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lba := (int64(i)*2654435761 + 7) % d.Blocks()
		d.Submit(&Request{Kind: Read, LBA: lba, Blocks: 1}, func() {})
	}
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// Regression: a completion callback that synchronously submits more
// requests must not race the device into servicing two at once. With
// the busy guard, chained submissions serialize: three equal-cost
// requests take three service times, not two.
func TestHDDNoDoubleServiceFromCompletionCallback(t *testing.T) {
	k := sim.NewKernel()
	d := NewHDD(k, "d", DefaultHDD())
	var t1, t2, t3 time.Duration
	d.Submit(&Request{Kind: Read, LBA: 1_000_000, Blocks: 1}, func() {
		t1 = k.Now()
		// Submit two more from inside the completion callback.
		d.Submit(&Request{Kind: Read, LBA: 20_000_000, Blocks: 1}, func() { t2 = k.Now() })
		d.Submit(&Request{Kind: Read, LBA: 40_000_000, Blocks: 1}, func() { t3 = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if t2 == t3 {
		t.Fatalf("two requests completed at the same instant (%v): double service", t2)
	}
	if t3 <= t2 || t2 <= t1 {
		t.Fatalf("completions not serialized: %v, %v, %v", t1, t2, t3)
	}
}
