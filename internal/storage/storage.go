// Package storage models block storage devices in virtual time.
//
// Devices service block Requests and report completions through
// callbacks run in sim kernel context. Three device models are provided:
//
//   - HDD: a rotating disk with a seek-distance service-time model and an
//     internal command queue that picks the nearest pending request
//     (NCQ/elevator behaviour), so deeper queues yield shorter average
//     seeks and higher throughput.
//   - SSD: a flash device with flat access latency and internal channel
//     parallelism.
//   - RAID0: a striping array over member devices.
//
// All addressing is in fixed-size blocks of BlockSize bytes.
package storage

import (
	"fmt"
	"math"
	"time"

	"rootreplay/internal/sim"
)

// BlockSize is the size in bytes of one device block (and of one page in
// the page cache above).
const BlockSize = 4096

// Kind distinguishes reads from writes.
type Kind int

const (
	// Read transfers blocks from the device.
	Read Kind = iota
	// Write transfers blocks to the device.
	Write
)

// String returns "read" or "write".
func (k Kind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Request is one block I/O operation.
type Request struct {
	Kind   Kind
	LBA    int64 // first block address
	Blocks int   // number of contiguous blocks
	Owner  int   // issuing sim-thread ID, used by schedulers for accounting
}

// End returns the block address one past the last block of the request.
func (r *Request) End() int64 { return r.LBA + int64(r.Blocks) }

// Stats accumulates device activity counters.
type Stats struct {
	Reads        int64
	Writes       int64
	BlocksRead   int64
	BlocksWrite  int64
	BusyTime     time.Duration
	SeekTime     time.Duration
	TransferTime time.Duration
}

// Util returns the fraction of the elapsed interval the device was busy,
// normalized by parallelism (a saturated 8-channel SSD reports 1.0, not
// 8.0). Callers sampling utilization over a window subtract two BusyTime
// snapshots and pass the delta in a Stats value.
func (s Stats) Util(elapsed time.Duration, parallelism int) float64 {
	if elapsed <= 0 {
		return 0
	}
	if parallelism < 1 {
		parallelism = 1
	}
	u := float64(s.BusyTime) / float64(elapsed) / float64(parallelism)
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Device is a block device that services requests in virtual time.
// Submit never blocks; done is invoked in kernel context at the virtual
// time the request completes. Devices may reorder queued requests
// internally.
type Device interface {
	// Name identifies the device in logs and reports.
	Name() string
	// Submit enqueues r; done runs in kernel context on completion.
	Submit(r *Request, done func())
	// Outstanding reports the number of submitted-but-incomplete requests.
	Outstanding() int
	// Parallelism reports how many requests the device can usefully
	// service at once (1 for an HDD; channels for an SSD; the sum for a
	// RAID array). Schedulers use it to bound dispatch.
	Parallelism() int
	// QueueDepth reports how many requests the device will accept and
	// potentially reorder internally (NCQ depth for an HDD). Schedulers
	// use it as their dispatch budget: keeping this many requests at the
	// device lets its internal elevator work.
	QueueDepth() int
	// Blocks reports the device capacity in blocks.
	Blocks() int64
	// Rotational reports whether the device has seek/rotation mechanics;
	// schedulers disable anticipatory idling on non-rotational devices,
	// as Linux CFQ does.
	Rotational() bool
	// Stats returns a snapshot of activity counters.
	Stats() Stats
}

// HDDParams describe a rotating disk's performance envelope.
type HDDParams struct {
	Blocks      int64         // capacity
	MinSeek     time.Duration // shortest non-zero seek (track-to-track)
	MaxSeek     time.Duration // full-stroke seek
	RotationRPM int           // spindle speed, e.g. 7200
	BandwidthBs int64         // media transfer rate, bytes/second
	QueueDepth  int           // internal command queue (NCQ) capacity; <=1 disables reordering
	// NCQRotGain scales how much a deeper command queue reduces expected
	// rotational latency: with c candidates queued, rotational wait is
	// halfRotation / (1 + NCQRotGain*(c-1)). Real NCQ drives pick the
	// request whose sector sweeps under the head soonest, so rotational
	// wait shrinks with queue depth; this is the first-order model of
	// that effect (and the source of Figure 5(a)'s sublinear slowdown).
	NCQRotGain float64
}

// DefaultHDD returns parameters resembling a 7200 RPM SATA disk.
func DefaultHDD() HDDParams {
	return HDDParams{
		Blocks:      256 << 20 / 4, // 256 GiB / 4 KiB
		MinSeek:     500 * time.Microsecond,
		MaxSeek:     14 * time.Millisecond,
		RotationRPM: 7200,
		BandwidthBs: 120 << 20,
		QueueDepth:  31,
		NCQRotGain:  0.15,
	}
}

// HDD is a single rotating disk. It services one request at a time,
// choosing the queued request nearest the current head position.
type HDD struct {
	k      *sim.Kernel
	name   string
	p      HDDParams
	head   int64
	busy   bool
	queue  []pending
	nQueue int
	stats  Stats

	// inflight is the request being serviced; its completion arrives as
	// a pooled sim event (Complete) rather than a captured closure.
	inflight pending
	// kickPending is set while a same-instant elevator kick event is
	// queued, so a burst of submissions arriving at one instant is
	// re-evaluated by the elevator once, with the full candidate set,
	// instead of once per request.
	kickPending bool
}

// hddKickTag is the Complete tag for the deferred elevator evaluation;
// any other tag is a request completion.
const hddKickTag = ^uint64(0)

type pending struct {
	r    *Request
	done func()
}

// NewHDD constructs an HDD bound to kernel k.
func NewHDD(k *sim.Kernel, name string, p HDDParams) *HDD {
	if p.QueueDepth < 1 {
		p.QueueDepth = 1
	}
	return &HDD{k: k, name: name, p: p}
}

// Name implements Device.
func (d *HDD) Name() string { return d.name }

// Parallelism implements Device. An HDD has a single actuator.
func (d *HDD) Parallelism() int { return 1 }

// QueueDepth implements Device, reporting the NCQ capacity.
func (d *HDD) QueueDepth() int { return d.p.QueueDepth }

// Rotational implements Device.
func (d *HDD) Rotational() bool { return true }

// Blocks implements Device.
func (d *HDD) Blocks() int64 { return d.p.Blocks }

// Outstanding implements Device.
func (d *HDD) Outstanding() int { return d.nQueue }

// Stats implements Device.
func (d *HDD) Stats() Stats { return d.stats }

// Submit implements Device.
func (d *HDD) Submit(r *Request, done func()) {
	if r.Blocks <= 0 {
		panic(fmt.Sprintf("storage: %s: empty request", d.name))
	}
	d.queue = append(d.queue, pending{r, done})
	d.nQueue++
	if !d.busy {
		d.startNext()
	}
}

// kick schedules one elevator evaluation at the current instant,
// batching re-evaluation per instant instead of per request: every
// submission triggered by a completion — the callback's own synchronous
// resubmits and the submissions of any thread the completion wakes at
// the same instant — lands in the queue before the kick event fires, so
// the drive picks its next request from the full candidate set instead
// of greedily starting on the first arrival. Virtual timing is
// unchanged: the kick fires at the instant the completion occurred.
func (d *HDD) kick() {
	if d.kickPending || d.busy {
		return
	}
	d.kickPending = true
	d.k.AfterComplete(0, d, hddKickTag)
}

// Complete implements sim.Completer: either the deferred elevator kick
// or the in-flight request's completion. busy stays held across done()
// so the callback's synchronous submissions queue for the batched kick
// rather than starting the drive one by one.
func (d *HDD) Complete(tag uint64) {
	if tag == hddKickTag {
		d.kickPending = false
		d.startNext()
		return
	}
	p := d.inflight
	d.inflight = pending{}
	d.head = p.r.End()
	d.nQueue--
	p.done()
	d.busy = false
	d.kick()
}

// startNext picks the queued request with the nearest starting LBA to the
// current head position (elevator/NCQ behaviour) and begins servicing it.
// The busy guard matters: a completion callback invokes the requester's
// done function, which may synchronously submit (and kick) the next
// request before the completion's own kick runs; without the guard a
// single-actuator disk would service two requests concurrently.
func (d *HDD) startNext() {
	if d.busy || len(d.queue) == 0 {
		return
	}
	best, bestDist := 0, int64(math.MaxInt64)
	for i, p := range d.queue {
		dist := p.r.LBA - d.head
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist {
			best, bestDist = i, dist
		}
	}
	candidates := len(d.queue)
	p := d.queue[best]
	d.queue = append(d.queue[:best], d.queue[best+1:]...)
	d.busy = true

	seek, xfer := d.serviceTime(p.r, candidates)
	svc := seek + xfer
	d.stats.BusyTime += svc
	d.stats.SeekTime += seek
	d.stats.TransferTime += xfer
	if p.r.Kind == Read {
		d.stats.Reads++
		d.stats.BlocksRead += int64(p.r.Blocks)
	} else {
		d.stats.Writes++
		d.stats.BlocksWrite += int64(p.r.Blocks)
	}
	d.inflight = p
	d.k.AfterComplete(svc, d, 0)
}

// serviceTime returns (positioning, transfer) time for servicing r given
// the current head position and the number of candidate requests that
// were queued when the drive chose this one. Positioning is zero for a
// sequential access (head already at r.LBA); otherwise it is a
// square-root seek model plus a rotational latency that shrinks with
// queue depth (NCQ).
func (d *HDD) serviceTime(r *Request, candidates int) (position, transfer time.Duration) {
	dist := r.LBA - d.head
	if dist < 0 {
		dist = -dist
	}
	if dist != 0 {
		frac := math.Sqrt(float64(dist) / float64(d.p.Blocks))
		seek := d.p.MinSeek + time.Duration(frac*float64(d.p.MaxSeek-d.p.MinSeek))
		halfRot := float64(time.Minute) / float64(d.p.RotationRPM) / 2
		if candidates > 1 && d.p.NCQRotGain > 0 {
			halfRot /= 1 + d.p.NCQRotGain*float64(candidates-1)
		}
		position = seek + time.Duration(halfRot)
	}
	bytes := int64(r.Blocks) * BlockSize
	transfer = time.Duration(float64(bytes) / float64(d.p.BandwidthBs) * float64(time.Second))
	return position, transfer
}

// SSDParams describe a flash device.
type SSDParams struct {
	Blocks       int64
	ReadLatency  time.Duration // per-request access latency
	WriteLatency time.Duration
	BandwidthBs  int64 // per-channel transfer rate
	Channels     int   // internal parallelism
}

// DefaultSSD returns parameters resembling a SATA-era (c. 2013)
// consumer SSD: ~0.2ms random-read service, slower writes.
func DefaultSSD() SSDParams {
	return SSDParams{
		Blocks:       256 << 20 / 4,
		ReadLatency:  200 * time.Microsecond,
		WriteLatency: 400 * time.Microsecond,
		BandwidthBs:  250 << 20,
		Channels:     8,
	}
}

// SSD is a flash device servicing up to Channels requests concurrently,
// each with flat latency plus transfer time. Queued requests beyond the
// channel count are serviced FIFO.
type SSD struct {
	k      *sim.Kernel
	name   string
	p      SSDParams
	active int
	queue  []pending
	nQueue int
	stats  Stats

	// slots hold in-flight requests; the slot index is the Complete tag,
	// so completions are pooled tagged events instead of closures.
	slots []pending
	free  []uint64 // recycled slot indices
}

// NewSSD constructs an SSD bound to kernel k.
func NewSSD(k *sim.Kernel, name string, p SSDParams) *SSD {
	if p.Channels < 1 {
		p.Channels = 1
	}
	return &SSD{k: k, name: name, p: p}
}

// Name implements Device.
func (d *SSD) Name() string { return d.name }

// Parallelism implements Device.
func (d *SSD) Parallelism() int { return d.p.Channels }

// QueueDepth implements Device. SSDs accept a deep queue (SATA NCQ is
// 32); extra queued requests keep the channels saturated.
func (d *SSD) QueueDepth() int { return 32 }

// Rotational implements Device.
func (d *SSD) Rotational() bool { return false }

// Blocks implements Device.
func (d *SSD) Blocks() int64 { return d.p.Blocks }

// Outstanding implements Device.
func (d *SSD) Outstanding() int { return d.nQueue }

// Stats implements Device.
func (d *SSD) Stats() Stats { return d.stats }

// Submit implements Device.
func (d *SSD) Submit(r *Request, done func()) {
	if r.Blocks <= 0 {
		panic(fmt.Sprintf("storage: %s: empty request", d.name))
	}
	d.nQueue++
	if d.active < d.p.Channels {
		d.start(pending{r, done})
		return
	}
	d.queue = append(d.queue, pending{r, done})
}

func (d *SSD) start(p pending) {
	d.active++
	lat := d.p.ReadLatency
	if p.r.Kind == Write {
		lat = d.p.WriteLatency
		d.stats.Writes++
		d.stats.BlocksWrite += int64(p.r.Blocks)
	} else {
		d.stats.Reads++
		d.stats.BlocksRead += int64(p.r.Blocks)
	}
	xfer := time.Duration(float64(int64(p.r.Blocks)*BlockSize) / float64(d.p.BandwidthBs) * float64(time.Second))
	svc := lat + xfer
	d.stats.BusyTime += svc
	d.stats.TransferTime += xfer
	var slot uint64
	if n := len(d.free); n > 0 {
		slot = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		d.slots = append(d.slots, pending{})
		slot = uint64(len(d.slots) - 1)
	}
	d.slots[slot] = p
	d.k.AfterComplete(svc, d, slot)
}

// Complete implements sim.Completer: the tagged slot's request is done.
func (d *SSD) Complete(slot uint64) {
	p := d.slots[slot]
	d.slots[slot] = pending{}
	d.free = append(d.free, slot)
	d.active--
	d.nQueue--
	p.done()
	if len(d.queue) > 0 && d.active < d.p.Channels {
		next := d.queue[0]
		d.queue = append(d.queue[:0], d.queue[1:]...)
		d.start(next)
	}
}

// RAID0 stripes blocks across member devices in fixed-size chunks. A
// request spanning multiple stripes is split into per-member
// sub-requests; the parent completes when all parts do.
type RAID0 struct {
	name        string
	members     []Device
	chunkBlocks int64
	outstanding int
}

// NewRAID0 builds a stripe set over members with the given chunk size in
// blocks. The paper's array uses a 512 KiB chunk (128 blocks).
func NewRAID0(name string, chunkBlocks int64, members ...Device) *RAID0 {
	if len(members) == 0 {
		panic("storage: RAID0 needs at least one member")
	}
	if chunkBlocks < 1 {
		panic("storage: RAID0 chunk must be >= 1 block")
	}
	return &RAID0{name: name, members: members, chunkBlocks: chunkBlocks}
}

// Name implements Device.
func (d *RAID0) Name() string { return d.name }

// Parallelism implements Device.
func (d *RAID0) Parallelism() int {
	n := 0
	for _, m := range d.members {
		n += m.Parallelism()
	}
	return n
}

// QueueDepth implements Device, summing member depths.
func (d *RAID0) QueueDepth() int {
	n := 0
	for _, m := range d.members {
		n += m.QueueDepth()
	}
	return n
}

// Rotational implements Device: an array is rotational if any member is.
func (d *RAID0) Rotational() bool {
	for _, m := range d.members {
		if m.Rotational() {
			return true
		}
	}
	return false
}

// Blocks implements Device.
func (d *RAID0) Blocks() int64 {
	var min int64 = math.MaxInt64
	for _, m := range d.members {
		if m.Blocks() < min {
			min = m.Blocks()
		}
	}
	return min * int64(len(d.members))
}

// Outstanding implements Device.
func (d *RAID0) Outstanding() int { return d.outstanding }

// Stats implements Device. It sums member stats; BusyTime is therefore
// aggregate device-time, not wall time.
func (d *RAID0) Stats() Stats {
	var s Stats
	for _, m := range d.members {
		ms := m.Stats()
		s.Reads += ms.Reads
		s.Writes += ms.Writes
		s.BlocksRead += ms.BlocksRead
		s.BlocksWrite += ms.BlocksWrite
		s.BusyTime += ms.BusyTime
		s.SeekTime += ms.SeekTime
		s.TransferTime += ms.TransferTime
	}
	return s
}

// Submit implements Device, splitting the request along stripe
// boundaries.
func (d *RAID0) Submit(r *Request, done func()) {
	type part struct {
		member int
		lba    int64
		blocks int
	}
	var parts []part
	lba, n := r.LBA, int64(r.Blocks)
	for n > 0 {
		stripe := lba / d.chunkBlocks
		member := int(stripe % int64(len(d.members)))
		memberStripe := stripe / int64(len(d.members))
		off := lba % d.chunkBlocks
		take := d.chunkBlocks - off
		if take > n {
			take = n
		}
		// Merge with previous part if it continues on the same member at
		// the contiguous address (consecutive stripes on a 1-member array,
		// or large chunk).
		mlba := memberStripe*d.chunkBlocks + off
		if len(parts) > 0 {
			last := &parts[len(parts)-1]
			if last.member == member && last.lba+int64(last.blocks) == mlba {
				last.blocks += int(take)
				lba += take
				n -= take
				continue
			}
		}
		parts = append(parts, part{member, mlba, int(take)})
		lba += take
		n -= take
	}
	d.outstanding++
	remain := len(parts)
	for _, p := range parts {
		sub := &Request{Kind: r.Kind, LBA: p.lba, Blocks: p.blocks, Owner: r.Owner}
		d.members[p.member].Submit(sub, func() {
			remain--
			if remain == 0 {
				d.outstanding--
				done()
			}
		})
	}
}
