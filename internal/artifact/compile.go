package artifact

import (
	"bytes"
	"errors"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/trace"
)

// Stats describes how a cached compile was satisfied.
type Stats struct {
	Key       string // content address ("" when caching was off)
	Hit       bool   // artifact loaded from the store
	Corrupt   bool   // a damaged entry was detected and recompiled
	LoadNs    int64  // time to load+decode the artifact (hits only)
	CompileNs int64  // time to parse/compile (misses only)
	Bytes     int64  // artifact size on disk (0 when caching was off)
}

// CompileTrace compiles an in-memory trace through the store: on a hit
// the benchmark is decoded from the cached binary artifact without
// recompiling; on a miss (or a corrupt entry) it compiles and
// repopulates the cache. A nil store compiles directly.
func CompileTrace(s *Store, tr *trace.Trace, snap *snapshot.Snapshot, modes core.ModeSet) (*artc.Benchmark, Stats, error) {
	if s == nil {
		t0 := time.Now()
		b, err := artc.Compile(tr, snap, modes)
		return b, Stats{CompileNs: time.Since(t0).Nanoseconds()}, err
	}
	key, err := KeyTrace(tr, snap, modes)
	if err != nil {
		return nil, Stats{}, err
	}
	return compileAt(s, key, func() (*artc.Benchmark, error) {
		return artc.Compile(tr, snap, modes)
	})
}

// CompileStrace compiles raw strace text through the store, keyed on
// the raw bytes. On a miss it compiles via the streaming path
// (CompileStraceStream), so cold compiles keep the lex/analyze overlap.
// A nil store compiles directly.
func CompileStrace(s *Store, raw []byte, snap *snapshot.Snapshot, modes core.ModeSet) (*artc.Benchmark, Stats, error) {
	compile := func() (*artc.Benchmark, error) {
		return artc.CompileStraceStream(bytes.NewReader(raw), snap, modes)
	}
	if s == nil {
		t0 := time.Now()
		b, err := compile()
		return b, Stats{CompileNs: time.Since(t0).Nanoseconds()}, err
	}
	// The platform in the key is the strace parser's: strace is a Linux
	// tracer, and ParseStrace stamps its traces accordingly.
	return compileAt(s, Key(raw, snap, "linux", modes), compile)
}

// compileAt is the shared get-or-compile-and-put path.
func compileAt(s *Store, key string, compile func() (*artc.Benchmark, error)) (*artc.Benchmark, Stats, error) {
	st := Stats{Key: key}
	t0 := time.Now()
	b, n, err := s.Get(key)
	switch {
	case err == nil:
		st.Hit = true
		st.LoadNs = time.Since(t0).Nanoseconds()
		st.Bytes = n
		return b, st, nil
	case err == ErrMiss:
	default:
		var ce *CorruptError
		if !errors.As(err, &ce) {
			return nil, st, err // I/O failure, not a miss
		}
		st.Corrupt = true // damaged entry removed by Get; recompile
	}
	t0 = time.Now()
	b, err = compile()
	if err != nil {
		return nil, st, err
	}
	st.CompileNs = time.Since(t0).Nanoseconds()
	if st.Bytes, err = s.Put(key, b); err != nil {
		return nil, st, err
	}
	return b, st, nil
}
