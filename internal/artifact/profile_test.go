package artifact

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rootreplay/internal/shard"
)

func sampleProfile() *shard.SliceProfile {
	return &shard.SliceProfile{
		Atoms: []shard.ProfileAtom{
			{Atom: 0, Actions: 120, CostNs: 5_000_000},
			{Atom: 7, Actions: 600, CostNs: 90_000_000},
			{Atom: 31, Actions: 601, CostNs: 11_000_000},
		},
		Pairs: []shard.ProfilePair{
			{A: 0, B: 7, WaitNs: 4_000_000, Publishes: 31},
			{A: 7, B: 31, WaitNs: 250_000, Publishes: 12},
		},
	}
}

func TestProfileStoreMissPutGet(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := ProfileKey("benchkey", 700, 0, true)
	if _, _, err := s.GetProfile(key); err != ErrMiss {
		t.Fatalf("GetProfile on empty store: %v, want ErrMiss", err)
	}
	sp := sampleProfile()
	n, err := s.PutProfile(key, sp)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("PutProfile reported zero bytes")
	}
	got, gn, err := s.GetProfile(key)
	if err != nil {
		t.Fatal(err)
	}
	if gn != n {
		t.Fatalf("GetProfile size %d, Put size %d", gn, n)
	}
	if !bytes.Equal(got.Encode(), sp.Encode()) {
		t.Fatal("round-tripped profile differs")
	}
}

// ProfileKey must separate every input that shapes the profiling
// replay: the benchmark, the slice budget, the slice cap, and the
// device-sync regime.
func TestProfileKeySeparatesInputs(t *testing.T) {
	keys := map[string]bool{
		ProfileKey("b1", 700, 0, true):  true,
		ProfileKey("b2", 700, 0, true):  true,
		ProfileKey("b1", 800, 0, true):  true,
		ProfileKey("b1", 700, 4, true):  true,
		ProfileKey("b1", 700, 0, false): true,
	}
	if len(keys) != 5 {
		t.Fatalf("profile keys collide: %d distinct of 5", len(keys))
	}
}

// A damaged profile entry must surface as CorruptError and be removed,
// so the caller falls back to the static cut and the next profiling
// replay can repopulate the key.
func TestProfileCorruptEntryRemoved(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := ProfileKey("benchkey", 700, 0, false)
	if _, err := s.PutProfile(key, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	p := s.profilePath(key)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = s.GetProfile(key)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("GetProfile on damaged entry: %v, want CorruptError", err)
	}
	if _, statErr := os.Stat(p); !errors.Is(statErr, os.ErrNotExist) {
		t.Fatal("damaged profile entry not removed")
	}
	if _, _, err := s.GetProfile(key); err != ErrMiss {
		t.Fatalf("second GetProfile: %v, want ErrMiss", err)
	}
}

// Profile entries are live store entries: the evictor's stale-temp
// cleanup must never treat an old .sliceprof as an abandoned temp file,
// and Len counts profiles alongside benchmarks.
func TestProfileSurvivesTempCleanup(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := ProfileKey("benchkey", 700, 0, false)
	if _, err := s.PutProfile(key, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	// Age the entry past the stale-temp horizon, and drop a genuinely
	// stale temp file next to it.
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(s.profilePath(key), old, old); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, ".put-stale")
	if err := os.WriteFile(stale, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if err := s.evict(); err != nil {
		t.Fatal(err)
	}
	if _, statErr := os.Stat(stale); !errors.Is(statErr, os.ErrNotExist) {
		t.Fatal("stale temp file survived eviction")
	}
	if _, _, err := s.GetProfile(key); err != nil {
		t.Fatalf("aged profile entry lost to temp cleanup: %v", err)
	}
	n, _, err := s.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Len counts %d entries, want 1 (the profile)", n)
	}
}
