package artifact

// BenchmarkDecodeBinaryMagritte times the warm half of the cache hot
// path — rebuilding a ready-to-replay Benchmark from its binary
// artifact — on the same mid-size Magritte trace perfstat measures.

import (
	"bytes"
	"testing"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/magritte"
)

func BenchmarkDecodeBinaryMagritte(b *testing.B) {
	sp, _ := magritte.SpecByName("pages_docphoto15")
	gen, err := magritte.Generate(sp, magritte.GenOptions{Scale: 0.02, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	bm, err := artc.Compile(gen.Trace, gen.Snapshot, core.DefaultModes())
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bm.EncodeBinary(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := artc.DecodeBinaryBytes(data); err != nil {
			b.Fatal(err)
		}
	}
}
