// Slice-profile entries: the store keeps a replay's observed slicing
// weights (shard.SliceProfile) next to the compiled benchmark, so a
// cached trace loads both and repeat runs replay the converged,
// profile-guided cut without re-measuring.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"rootreplay/internal/shard"
)

// ProfileKey derives the content address of a slice profile from the
// benchmark's content address and everything else that shapes the
// profiling replay: the slice options and the profile format version.
// A profile is only valid for re-cutting the exact (trace, modes,
// slice-options) combination that produced it.
func ProfileKey(benchKey string, sliceActions, sliceMax int, deviceSync bool) string {
	h := sha256.New()
	io.WriteString(h, "artc-sliceprof\x00")
	io.WriteString(h, strconv.Itoa(shard.ProfileFormatVersion))
	io.WriteString(h, "\x00")
	io.WriteString(h, benchKey)
	io.WriteString(h, "\x00")
	io.WriteString(h, strconv.Itoa(sliceActions))
	io.WriteString(h, "\x00")
	io.WriteString(h, strconv.Itoa(sliceMax))
	io.WriteString(h, "\x00")
	io.WriteString(h, strconv.FormatBool(deviceSync))
	return hex.EncodeToString(h.Sum(nil))
}

// profilePath returns the entry file for a profile key, sharded like
// benchmark entries.
func (s *Store) profilePath(key string) string {
	return filepath.Join(s.dir, key[:2], key+".sliceprof")
}

// GetProfile loads the slice profile stored at key. It returns ErrMiss
// when the key is absent and a *CorruptError (after deleting the
// damaged file) when the entry fails checksum or decode — the same
// contract as Get, so callers fall back to the static cut the way a
// corrupt benchmark falls back to recompiling.
func (s *Store) GetProfile(key string) (*shard.SliceProfile, int64, error) {
	p := s.profilePath(key)
	data, err := os.ReadFile(p)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, ErrMiss
		}
		return nil, 0, fmt.Errorf("artifact: %w", err)
	}
	sp, err := shard.DecodeProfile(data)
	if err != nil {
		os.Remove(p)
		return nil, 0, &CorruptError{Key: key, Path: p, Err: err}
	}
	now := time.Now()
	os.Chtimes(p, now, now)
	return sp, int64(len(data)), nil
}

// PutProfile stores a slice profile at key and returns the entry size.
// The write is atomic (temp file + rename) and triggers the same LRU
// eviction as benchmark entries.
func (s *Store) PutProfile(key string, sp *shard.SliceProfile) (int64, error) {
	data := sp.Encode()
	p := s.profilePath(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return 0, fmt.Errorf("artifact: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return 0, fmt.Errorf("artifact: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("artifact: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("artifact: %w", err)
	}
	if err := s.evict(); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}
