package artifact

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/magritte"
)

func genBench(t *testing.T) *magritte.Generated {
	t.Helper()
	sp, ok := magritte.SpecByName("pages_docphoto15")
	if !ok {
		t.Fatal("magritte spec missing")
	}
	gen, err := magritte.Generate(sp, magritte.GenOptions{Scale: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func TestStoreMissPutGet(t *testing.T) {
	gen := genBench(t)
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	modes := core.DefaultModes()
	key, err := KeyTrace(gen.Trace, gen.Snapshot, modes)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(key); err != ErrMiss {
		t.Fatalf("Get on empty store: %v, want ErrMiss", err)
	}

	b, st, err := CompileTrace(s, gen.Trace, gen.Snapshot, modes)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hit || st.Key != key || st.Bytes == 0 || st.CompileNs == 0 {
		t.Fatalf("cold compile stats: %+v", st)
	}

	b2, st2, err := CompileTrace(s, gen.Trace, gen.Snapshot, modes)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Hit || st2.LoadNs == 0 || st2.CompileNs != 0 {
		t.Fatalf("warm compile stats: %+v", st2)
	}
	if len(b2.Trace.Records) != len(b.Trace.Records) ||
		len(b2.Graph.Edges) != len(b.Graph.Edges) {
		t.Fatal("cached benchmark differs from compiled")
	}
	// The cached artifact re-encodes byte-identically to the fresh one.
	var fresh, cached bytes.Buffer
	if err := b.EncodeBinary(&fresh); err != nil {
		t.Fatal(err)
	}
	if err := b2.EncodeBinary(&cached); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh.Bytes(), cached.Bytes()) {
		t.Fatal("cached artifact drifts from fresh compile")
	}
}

func TestKeySeparatesInputs(t *testing.T) {
	gen := genBench(t)
	m1 := core.DefaultModes()
	m2 := m1
	m2.FDSeq = !m2.FDSeq
	k1, err := KeyTrace(gen.Trace, gen.Snapshot, m1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := KeyTrace(gen.Trace, gen.Snapshot, m2)
	if err != nil {
		t.Fatal(err)
	}
	k3, err := KeyTrace(gen.Trace, nil, m1)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 || k1 == k3 || k2 == k3 {
		t.Fatalf("keys collide: modes %s/%s nil-snap %s", k1, k2, k3)
	}
	if Key([]byte("x"), nil, "linux", m1) == Key([]byte("x"), nil, "osx", m1) {
		t.Fatal("platform does not separate keys")
	}
}

func TestCorruptEntryRecompiles(t *testing.T) {
	gen := genBench(t)
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	modes := core.DefaultModes()
	_, st, err := CompileTrace(s, gen.Trace, gen.Snapshot, modes)
	if err != nil {
		t.Fatal(err)
	}
	p := s.path(st.Key)

	// Flip a bit in the stored artifact.
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Direct Get reports corruption and removes the file.
	if _, _, err := s.Get(st.Key); err == nil {
		t.Fatal("Get returned a corrupt artifact")
	} else {
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("Get: %v, want CorruptError", err)
		}
	}
	if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt entry not removed")
	}

	// Corrupt again via a fresh Put, then prove CompileTrace falls back.
	if _, err := s.Put(st.Key, mustCompile(t, gen)); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(p)
	data[len(data)/3] ^= 0x40
	os.WriteFile(p, data, 0o644)
	b, st2, err := CompileTrace(s, gen.Trace, gen.Snapshot, modes)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Corrupt || st2.Hit || b == nil {
		t.Fatalf("corrupt fallback stats: %+v", st2)
	}
	// The key is repopulated with a good artifact.
	if _, _, err := s.Get(st.Key); err != nil {
		t.Fatalf("repopulated Get: %v", err)
	}
}

func TestEvictionLRU(t *testing.T) {
	dir := t.TempDir()
	gen := genBench(t)
	b := mustCompile(t, gen)
	var buf bytes.Buffer
	if err := b.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	one := int64(buf.Len())
	s, err := Open(dir, 3*one+one/2) // room for three artifacts, not four
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{
		Key([]byte("a"), nil, "linux", core.DefaultModes()),
		Key([]byte("b"), nil, "linux", core.DefaultModes()),
		Key([]byte("c"), nil, "linux", core.DefaultModes()),
		Key([]byte("d"), nil, "linux", core.DefaultModes()),
	}
	for i, k := range keys[:3] {
		if _, err := s.Put(k, b); err != nil {
			t.Fatal(err)
		}
		// Space mtimes out so LRU order is unambiguous on coarse
		// filesystems.
		old := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(s.path(k), old, old); err != nil {
			t.Fatal(err)
		}
	}
	// Touch keys[0] via Get so it is the most recently used.
	if _, _, err := s.Get(keys[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(keys[3], b); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(keys[1]); err != ErrMiss {
		t.Fatalf("oldest unused entry survived eviction: %v", err)
	}
	if _, _, err := s.Get(keys[0]); err != nil {
		t.Fatalf("recently used entry evicted: %v", err)
	}
	n, total, err := s.Len()
	if err != nil {
		t.Fatal(err)
	}
	if total > 3*one+one/2 {
		t.Fatalf("store over cap after eviction: %d entries, %d bytes", n, total)
	}
}

func TestStaleTempFilesCleaned(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1) // tiny cap forces evict() to walk
	if err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, ".put-stale")
	if err := os.WriteFile(stale, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Hour)
	os.Chtimes(stale, old, old)
	gen := genBench(t)
	if _, err := s.Put(Key([]byte("x"), nil, "linux", core.DefaultModes()), mustCompile(t, gen)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale temp file not cleaned")
	}
}

func mustCompile(t *testing.T, gen *magritte.Generated) *artc.Benchmark {
	t.Helper()
	b, _, err := CompileTrace(nil, gen.Trace, gen.Snapshot, core.DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	return b
}
