// Package artifact is a content-addressed store of compiled benchmark
// artifacts.
//
// ARTC's promise is "compile once, replay anywhere": the durable unit
// of replay is the compiled artifact, not the raw trace (rr and
// iReplayer make the same choice). The store maps a content address —
// the hash of the raw trace bytes, the snapshot, the platform, the
// ordering ModeSet, and the binary format version — to a binary
// benchmark artifact on disk, so a trace that is replayed repeatedly
// (chaos sweeps, shard sweeps, CI lanes) pays for parsing and
// compilation once.
//
// Properties:
//
//   - Writes are atomic: the artifact is written to a temp file in the
//     cache directory and renamed into place, so a crashed or
//     concurrent writer can never leave a half-written entry at a live
//     key. Concurrent writers of the same key race benignly — both
//     write identical bytes (the codec is deterministic).
//   - Reads detect corruption: every artifact carries a whole-file
//     checksum, and a Get that fails to decode removes the damaged
//     entry and reports a CorruptError so the caller can fall back to
//     recompiling. A corrupt cache can cost time, never correctness.
//   - The store is size-capped: after each Put, least-recently-used
//     entries (by file mtime, refreshed on hit) are evicted until the
//     store fits the cap.
package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/trace"
)

// ErrMiss reports that no artifact exists at the requested key.
var ErrMiss = errors.New("artifact: cache miss")

// CorruptError reports an artifact that existed but failed to decode.
// Get removes the damaged file before returning it, so the next Put can
// repopulate the key.
type CorruptError struct {
	Key  string
	Path string
	Err  error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("artifact: corrupt entry %s (%s): %v", e.Key[:12], e.Path, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// DefaultMaxBytes caps a store opened with maxBytes <= 0: 1 GiB.
const DefaultMaxBytes = 1 << 30

// Store is an on-disk content-addressed artifact cache rooted at a
// directory. The zero value is not usable; call Open.
type Store struct {
	dir      string
	maxBytes int64
}

// DefaultDir returns the per-user default cache directory,
// $XDG_CACHE_HOME/artc (or the platform equivalent).
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("artifact: no user cache dir: %w", err)
	}
	return filepath.Join(base, "artc"), nil
}

// Open opens (creating if needed) a store rooted at dir. An empty dir
// selects DefaultDir. maxBytes caps the store's total size; <= 0 means
// DefaultMaxBytes.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		var err error
		if dir, err = DefaultDir(); err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Store{dir: dir, maxBytes: maxBytes}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Key computes the content address for a compile of the given raw trace
// bytes. Everything that changes the compiled artifact participates:
// the trace bytes, the snapshot (nil and empty differ), the platform,
// the ordering modes, and the binary format version — so a format bump
// or a mode change can never alias a stale entry.
func Key(raw []byte, snap *snapshot.Snapshot, platform string, modes core.ModeSet) string {
	h := sha256.New()
	io.WriteString(h, "artc-artifact\x00")
	io.WriteString(h, strconv.Itoa(artc.BinaryFormatVersion))
	io.WriteString(h, "\x00")
	io.WriteString(h, platform)
	io.WriteString(h, "\x00")
	io.WriteString(h, artc.ModesString(modes))
	io.WriteString(h, "\x00")
	if snap != nil {
		io.WriteString(h, "snap\x00")
		snap.Encode(h)
	}
	io.WriteString(h, "\x00")
	h.Write(raw)
	return hex.EncodeToString(h.Sum(nil))
}

// KeyTrace computes the content address for an in-memory trace, using
// its canonical native encoding as the raw bytes.
func KeyTrace(tr *trace.Trace, snap *snapshot.Snapshot, modes core.ModeSet) (string, error) {
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		return "", fmt.Errorf("artifact: keying trace: %w", err)
	}
	return Key(buf.Bytes(), snap, tr.Platform, modes), nil
}

// path returns the entry file for a key, sharded one directory level by
// the leading key byte so no single directory grows unbounded.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".artc")
}

// Get loads the benchmark stored at key. It returns ErrMiss when the
// key is absent, and a *CorruptError (after deleting the damaged file)
// when the entry exists but fails checksum or decode. The artifact's
// size in bytes is returned alongside for accounting.
func (s *Store) Get(key string) (*artc.Benchmark, int64, error) {
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, ErrMiss
		}
		return nil, 0, fmt.Errorf("artifact: %w", err)
	}
	b, err := artc.DecodeBinaryBytes(data)
	if err != nil {
		os.Remove(p)
		return nil, 0, &CorruptError{Key: key, Path: p, Err: err}
	}
	// Refresh mtime so eviction is least-recently-used, not
	// least-recently-written. Best-effort: a failed touch only skews
	// eviction order.
	now := time.Now()
	os.Chtimes(p, now, now)
	return b, int64(len(data)), nil
}

// Put stores a compiled benchmark at key and returns the artifact size.
// The write is atomic (temp file + rename) and triggers LRU eviction of
// older entries if the store exceeds its size cap.
func (s *Store) Put(key string, b *artc.Benchmark) (int64, error) {
	var buf bytes.Buffer
	if err := b.EncodeBinary(&buf); err != nil {
		return 0, err
	}
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return 0, fmt.Errorf("artifact: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return 0, fmt.Errorf("artifact: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("artifact: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("artifact: %w", err)
	}
	if err := s.evict(); err != nil {
		return 0, err
	}
	return int64(buf.Len()), nil
}

// isEntry reports whether a cache file is a live store entry — a
// compiled benchmark or a slice profile — as opposed to an abandoned
// temp file.
func isEntry(p string) bool {
	switch filepath.Ext(p) {
	case ".artc", ".sliceprof":
		return true
	}
	return false
}

// entry is one cache file seen by the evictor.
type entry struct {
	path  string
	size  int64
	mtime time.Time
}

// evict removes least-recently-used entries until the store fits
// maxBytes. Stray temp files older than an hour are cleaned up too.
func (s *Store) evict() error {
	var entries []entry
	var total int64
	err := filepath.WalkDir(s.dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with a concurrent eviction
		}
		if !isEntry(p) {
			if time.Since(info.ModTime()) > time.Hour {
				os.Remove(p) // abandoned temp file
			}
			return nil
		}
		entries = append(entries, entry{p, info.Size(), info.ModTime()})
		total += info.Size()
		return nil
	})
	if err != nil {
		return fmt.Errorf("artifact: evicting: %w", err)
	}
	if total <= s.maxBytes {
		return nil
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	for _, e := range entries {
		if total <= s.maxBytes {
			break
		}
		if os.Remove(e.path) == nil {
			total -= e.size
		}
	}
	return nil
}

// Len reports how many artifacts the store currently holds and their
// total size.
func (s *Store) Len() (n int, bytes int64, err error) {
	err = filepath.WalkDir(s.dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !isEntry(p) {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		n++
		bytes += info.Size()
		return nil
	})
	return n, bytes, err
}
