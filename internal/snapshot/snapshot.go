// Package snapshot captures and restores the initial file-tree state a
// trace replay needs (§4.3.2).
//
// A snapshot records the parts of the namespace a program touches:
// directory structure, file sizes (contents are never recorded),
// symbolic-link targets, extended-attribute names and sizes, and special
// files. Restoring a snapshot populates a simulated System before
// replay; a delta init fixes up only the differences from the current
// state; overlay init merges multiple snapshots so several benchmarks
// can run concurrently.
package snapshot

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"rootreplay/internal/stack"
	"rootreplay/internal/vfs"
)

// EntryKind is the type of a snapshot entry.
type EntryKind string

// Entry kinds.
const (
	KindDir     EntryKind = "dir"
	KindFile    EntryKind = "file"
	KindSymlink EntryKind = "slink"
	KindSpecial EntryKind = "special"
)

// Entry is one object in a snapshot.
type Entry struct {
	Kind   EntryKind
	Path   string
	Size   int64             // files
	Mode   uint32            // files and dirs
	Target string            // symlinks
	Kind2  stack.SpecialKind // specials
	Xattrs map[string]int64  // attribute name -> value size
}

// Snapshot is an ordered list of entries (parents before children).
type Snapshot struct {
	Entries []Entry
}

// Capture records the full tree of sys's file system.
func Capture(sys *stack.System) *Snapshot {
	snap := &Snapshot{}
	sys.FS.Walk(func(p string, ino *vfs.Inode) {
		var e Entry
		e.Path = p
		e.Mode = ino.Mode
		switch ino.Type {
		case vfs.TypeDir:
			e.Kind = KindDir
		case vfs.TypeRegular:
			e.Kind = KindFile
			e.Size = ino.Size
		case vfs.TypeSymlink:
			e.Kind = KindSymlink
			e.Target = ino.Target
		case vfs.TypeSpecial:
			e.Kind = KindSpecial
			if k, ok := ino.Sys.(stack.SpecialKind); ok {
				e.Kind2 = k
			}
		}
		if len(ino.Xattrs) > 0 {
			e.Xattrs = make(map[string]int64, len(ino.Xattrs))
			for n, v := range ino.Xattrs {
				e.Xattrs[n] = int64(len(v))
			}
		}
		snap.Entries = append(snap.Entries, e)
	})
	return snap
}

// Restore populates sys with the snapshot's entries under the given path
// prefix ("" or "/" for the root). Existing compatible entries are
// tolerated, making Restore idempotent and usable for overlay init: call
// it once per snapshot to merge several trees.
func Restore(sys *stack.System, prefix string, snap *Snapshot) error {
	prefix = strings.TrimSuffix(prefix, "/")
	for _, e := range snap.Entries {
		p := prefix + e.Path
		switch e.Kind {
		case KindDir:
			if err := sys.SetupMkdirAll(p); err != nil {
				return err
			}
		case KindFile:
			if err := sys.SetupCreate(p, e.Size); err != nil {
				return err
			}
		case KindSymlink:
			if err := sys.SetupSymlink(e.Target, p); err != nil {
				// An identical pre-existing link is fine (overlay).
				if cur, cerr := sys.FS.Readlink(nil, p); cerr == vfs.OK && cur == e.Target {
					continue
				}
				return err
			}
		case KindSpecial:
			if err := sys.SetupSpecial(p, e.Kind2); err != nil {
				if _, cerr := sys.FS.ResolveNoFollow(nil, p); cerr == vfs.OK {
					continue
				}
				return err
			}
		}
		for name, size := range e.Xattrs {
			if err := sys.SetupXattr(p, name, size); err != nil {
				return err
			}
		}
	}
	return nil
}

// DeltaStats reports what a DeltaRestore changed.
type DeltaStats struct {
	Created int // entries created from scratch
	Resized int // files whose size was fixed
	Removed int // extraneous entries deleted
	Kept    int // entries already correct
}

// DeltaRestore brings sys's tree to the snapshot state with minimal
// work: missing entries are created, wrong-size files resized, and
// extraneous files under the snapshot's directories removed. This is
// ARTC's delta init, useful when a prior replay only slightly modified
// a previously initialized tree.
func DeltaRestore(sys *stack.System, prefix string, snap *Snapshot) (DeltaStats, error) {
	prefix = strings.TrimSuffix(prefix, "/")
	var st DeltaStats
	want := make(map[string]*Entry, len(snap.Entries))
	dirs := make(map[string]bool)
	for i := range snap.Entries {
		e := &snap.Entries[i]
		want[prefix+e.Path] = e
		if e.Kind == KindDir {
			dirs[prefix+e.Path] = true
		}
	}
	// Remove extraneous entries under snapshot directories, including
	// whole extraneous subtrees (a child is removable when its parent is
	// a snapshot directory or itself extraneous; Walk visits parents
	// before children). Deletion runs deepest-first so directories empty
	// out before Rmdir.
	var extraneous []string
	extraSet := make(map[string]bool)
	sys.FS.Walk(func(p string, ino *vfs.Inode) {
		if _, ok := want[p]; ok {
			return
		}
		parent := p[:strings.LastIndex(p, "/")]
		if parent == "" {
			parent = "/"
		}
		if dirs[parent] || extraSet[parent] {
			extraneous = append(extraneous, p)
			extraSet[p] = true
		}
	})
	sort.Slice(extraneous, func(i, j int) bool { return len(extraneous[i]) > len(extraneous[j]) })
	for _, p := range extraneous {
		ino, err := sys.FS.ResolveNoFollow(nil, p)
		if err != vfs.OK {
			continue
		}
		if ino.IsDir() {
			if sys.FS.Rmdir(nil, p) == vfs.OK {
				st.Removed++
			}
		} else if sys.FS.Unlink(nil, p) == vfs.OK {
			st.Removed++
		}
	}
	// Create or fix wanted entries.
	for _, e := range snap.Entries {
		p := prefix + e.Path
		ino, err := sys.FS.ResolveNoFollow(nil, p)
		switch {
		case err != vfs.OK:
			if rerr := Restore(sys, prefix, &Snapshot{Entries: []Entry{e}}); rerr != nil {
				return st, rerr
			}
			st.Created++
		case e.Kind == KindFile && ino.Type == vfs.TypeRegular && ino.Size != e.Size:
			ino.Size = e.Size
			st.Resized++
		default:
			st.Kept++
		}
	}
	return st, nil
}

// quotePath renders a path for the text format: paths stay bare when
// they contain no whitespace, quotes, backslashes, or control bytes —
// keeping the format diff-friendly and old snapshot files parseable —
// and switch to strconv.Quote form otherwise, so paths with spaces,
// quotes, or newlines round-trip intact.
func quotePath(p string) string {
	for i := 0; i < len(p); i++ {
		if c := p[i]; c <= ' ' || c == '"' || c == '\\' || c == 0x7f {
			return strconv.Quote(p)
		}
	}
	return p
}

// unquotePath reverses quotePath: tokens that begin with a double quote
// are unquoted, anything else is taken literally.
func unquotePath(tok string) (string, error) {
	if strings.HasPrefix(tok, "\"") {
		return strconv.Unquote(tok)
	}
	return tok, nil
}

// splitFields splits a snapshot line into tokens, keeping quoted
// strings (which may contain spaces) intact.
func splitFields(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		inQuote := false
		for i < len(line) && (inQuote || line[i] != ' ') {
			switch line[i] {
			case '"':
				inQuote = !inQuote
			case '\\':
				if inQuote && i+1 < len(line) {
					i++
				}
			}
			i++
		}
		if inQuote {
			return nil, fmt.Errorf("unterminated quote")
		}
		out = append(out, line[start:i])
	}
	return out, nil
}

// Encode serializes the snapshot as text:
//
//	#artc-snapshot v1
//	dir /a 0755
//	file /a/b 1048576 0644
//	file "/a/with space" 12 0644
//	slink /l "/target"
//	special /dev/urandom 1
//	xattr /a/b "user.k" 32
func (s *Snapshot) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "#artc-snapshot v1"); err != nil {
		return err
	}
	for _, e := range s.Entries {
		switch e.Kind {
		case KindDir:
			fmt.Fprintf(bw, "dir %s %#o\n", quotePath(e.Path), e.Mode)
		case KindFile:
			fmt.Fprintf(bw, "file %s %d %#o\n", quotePath(e.Path), e.Size, e.Mode)
		case KindSymlink:
			fmt.Fprintf(bw, "slink %s %q\n", quotePath(e.Path), e.Target)
		case KindSpecial:
			fmt.Fprintf(bw, "special %s %d\n", quotePath(e.Path), int(e.Kind2))
		}
		names := make([]string, 0, len(e.Xattrs))
		for n := range e.Xattrs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(bw, "xattr %s %q %d\n", quotePath(e.Path), n, e.Xattrs[n])
		}
	}
	return bw.Flush()
}

// Decode parses a serialized snapshot.
func Decode(r io.Reader) (*Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	snap := &Snapshot{}
	byPath := make(map[string]int)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		bad := func(msg string) error {
			return fmt.Errorf("snapshot: line %d: %s (%q)", lineNo, msg, line)
		}
		f, err := splitFields(line)
		if err != nil {
			return nil, bad(err.Error())
		}
		if len(f) < 2 {
			return nil, bad("too few fields")
		}
		p, err := unquotePath(f[1])
		if err != nil {
			return nil, bad("bad path")
		}
		switch f[0] {
		case "dir":
			mode := uint32(0o755)
			if len(f) > 2 {
				m, err := strconv.ParseUint(f[2], 0, 32)
				if err != nil {
					return nil, bad("bad mode")
				}
				mode = uint32(m)
			}
			byPath[p] = len(snap.Entries)
			snap.Entries = append(snap.Entries, Entry{Kind: KindDir, Path: p, Mode: mode})
		case "file":
			if len(f) < 3 {
				return nil, bad("file needs size")
			}
			size, err := strconv.ParseInt(f[2], 10, 64)
			if err != nil {
				return nil, bad("bad size")
			}
			mode := uint32(0o644)
			if len(f) > 3 {
				m, err := strconv.ParseUint(f[3], 0, 32)
				if err != nil {
					return nil, bad("bad mode")
				}
				mode = uint32(m)
			}
			byPath[p] = len(snap.Entries)
			snap.Entries = append(snap.Entries, Entry{Kind: KindFile, Path: p, Size: size, Mode: mode})
		case "slink":
			if len(f) < 3 {
				return nil, bad("slink needs target")
			}
			target, err := strconv.Unquote(f[2])
			if err != nil {
				return nil, bad("bad target")
			}
			byPath[p] = len(snap.Entries)
			snap.Entries = append(snap.Entries, Entry{Kind: KindSymlink, Path: p, Target: target})
		case "special":
			if len(f) < 3 {
				return nil, bad("special needs kind")
			}
			k, err := strconv.Atoi(f[2])
			if err != nil {
				return nil, bad("bad special kind")
			}
			byPath[p] = len(snap.Entries)
			snap.Entries = append(snap.Entries, Entry{Kind: KindSpecial, Path: p, Kind2: stack.SpecialKind(k)})
		case "xattr":
			if len(f) < 4 {
				return nil, bad("xattr needs name and size")
			}
			idx, ok := byPath[p]
			if !ok {
				return nil, bad("xattr for unknown path")
			}
			name, err := strconv.Unquote(f[2])
			if err != nil {
				return nil, bad("bad xattr name")
			}
			size, err := strconv.ParseInt(f[3], 10, 64)
			if err != nil {
				return nil, bad("bad xattr size")
			}
			if snap.Entries[idx].Xattrs == nil {
				snap.Entries[idx].Xattrs = make(map[string]int64)
			}
			snap.Entries[idx].Xattrs[name] = size
		default:
			return nil, bad("unknown entry kind")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// FromTrace synthesizes the minimal snapshot a trace needs: every path
// that is successfully accessed without first being created by the trace
// itself must exist beforehand, with a size covering the largest
// successful read offset. This lets ARTC build benchmarks from bare
// strace output with no separate snapshot tool.
func FromTrace(records []PreScanRecord) *Snapshot {
	type info struct {
		isDir  bool
		size   int64
		target string
		link   bool
	}
	need := make(map[string]*info)
	created := make(map[string]bool)
	// parentsOf collects directories that must pre-exist because a
	// successful call created an entry inside them.
	parentsOf := make(map[string]bool)
	noteParent := func(p string) {
		if i := strings.LastIndex(p, "/"); i > 0 {
			parentsOf[p[:i]] = true
		}
	}
	fdPath := make(map[int64]string)
	fdOff := make(map[int64]int64)
	for _, r := range records {
		if !r.OK {
			continue
		}
		switch r.Call {
		case "open", "creat":
			if r.Creates {
				created[r.Path] = true
				noteParent(r.Path)
			} else if !created[r.Path] {
				ni := need[r.Path]
				if ni == nil {
					ni = &info{}
					need[r.Path] = ni
				}
				ni.isDir = ni.isDir || r.IsDir
			}
			fdPath[r.FD] = r.Path
			fdOff[r.FD] = 0
		case "read":
			p := fdPath[r.FD]
			if p != "" && !created[p] {
				if ni := need[p]; ni != nil {
					fdOff[r.FD] += r.Size
					if fdOff[r.FD] > ni.size {
						ni.size = fdOff[r.FD]
					}
				}
			}
		case "pread":
			p := fdPath[r.FD]
			if p != "" && !created[p] {
				if ni := need[p]; ni != nil && r.Offset+r.Size > ni.size {
					ni.size = r.Offset + r.Size
				}
			}
		case "stat", "lstat", "access", "getattrlist":
			if !created[r.Path] {
				if need[r.Path] == nil {
					need[r.Path] = &info{}
				}
			}
		case "mkdir":
			created[r.Path] = true
			noteParent(r.Path)
		case "symlink":
			created[r.Path2] = true
			noteParent(r.Path2)
		case "rename", "link":
			created[r.Path2] = true
			noteParent(r.Path2)
		}
	}
	// Directories implied by successful creations, unless the trace
	// itself created them.
	for p := range parentsOf {
		if created[p] {
			continue
		}
		if ni := need[p]; ni != nil {
			ni.isDir = true
		} else {
			need[p] = &info{isDir: true}
		}
	}
	paths := make([]string, 0, len(need))
	for p := range need {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	snap := &Snapshot{}
	seenDirs := make(map[string]bool)
	addParents := func(p string) {
		parts := strings.Split(p, "/")
		cur := ""
		for _, part := range parts[1 : len(parts)-1] {
			cur += "/" + part
			if !seenDirs[cur] {
				seenDirs[cur] = true
				snap.Entries = append(snap.Entries, Entry{Kind: KindDir, Path: cur, Mode: 0o755})
			}
		}
	}
	for _, p := range paths {
		ni := need[p]
		addParents(p)
		switch {
		case ni.isDir:
			if !seenDirs[p] {
				seenDirs[p] = true
				snap.Entries = append(snap.Entries, Entry{Kind: KindDir, Path: p, Mode: 0o755})
			}
		case ni.link:
			snap.Entries = append(snap.Entries, Entry{Kind: KindSymlink, Path: p, Target: ni.target})
		default:
			snap.Entries = append(snap.Entries, Entry{Kind: KindFile, Path: p, Size: ni.size, Mode: 0o644})
		}
	}
	return snap
}

// PreScanRecord is the slice of trace information FromTrace needs,
// decoupled from the trace package to avoid an import cycle.
type PreScanRecord struct {
	Call    string
	Path    string
	Path2   string
	FD      int64
	Size    int64
	Offset  int64
	OK      bool
	Creates bool // open with O_CREAT that created the file
	IsDir   bool // open of a directory
}

// RestoreTree populates a bare vfs.FS from the snapshot, without any
// storage-stack side effects (no block placement). The ARTC compiler
// uses this to build the symbolic file-system model its trace analysis
// runs against.
func RestoreTree(fs *vfs.FS, prefix string, snap *Snapshot) error {
	prefix = strings.TrimSuffix(prefix, "/")
	mkParents := func(p string) vfs.Errno {
		slash := strings.LastIndex(p, "/")
		if slash <= 0 {
			return vfs.OK
		}
		_, err := fs.MkdirAll(nil, p[:slash], 0o755)
		return err
	}
	for _, e := range snap.Entries {
		p := prefix + e.Path
		switch e.Kind {
		case KindDir:
			if _, err := fs.MkdirAll(nil, p, e.Mode); err != vfs.OK {
				return fmt.Errorf("restore tree: mkdir %s: %w", p, err)
			}
		case KindFile:
			if err := mkParents(p); err != vfs.OK {
				return fmt.Errorf("restore tree: parents of %s: %w", p, err)
			}
			ino, _, err := fs.Create(nil, p, e.Mode, false)
			if err != vfs.OK {
				return fmt.Errorf("restore tree: create %s: %w", p, err)
			}
			ino.Size = e.Size
		case KindSymlink:
			if err := mkParents(p); err != vfs.OK {
				return fmt.Errorf("restore tree: parents of %s: %w", p, err)
			}
			if _, err := fs.Symlink(nil, e.Target, p); err != vfs.OK && err != vfs.EEXIST {
				return fmt.Errorf("restore tree: symlink %s: %w", p, err)
			}
		case KindSpecial:
			if err := mkParents(p); err != vfs.OK {
				return fmt.Errorf("restore tree: parents of %s: %w", p, err)
			}
			if _, err := fs.Mknod(nil, p, 0o666); err != vfs.OK && err != vfs.EEXIST {
				return fmt.Errorf("restore tree: mknod %s: %w", p, err)
			}
		}
		for name, size := range e.Xattrs {
			if err := fs.Setxattr(nil, p, name, make([]byte, size)); err != vfs.OK {
				return fmt.Errorf("restore tree: xattr %s: %w", p, err)
			}
		}
	}
	return nil
}
