package snapshot

import (
	"bytes"
	"testing"

	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
	"rootreplay/internal/vfs"
)

func newSys() *stack.System {
	k := sim.NewKernel()
	return stack.New(k, stack.DefaultConfig())
}

func buildSample(t *testing.T, sys *stack.System) {
	t.Helper()
	steps := []error{
		sys.SetupMkdirAll("/app/data"),
		sys.SetupCreate("/app/data/db.sqlite", 1<<20),
		sys.SetupCreate("/app/cache/thumb.png", 4096),
		sys.SetupSymlink("/app/data/db.sqlite", "/app/current"),
		sys.SetupSpecial("/dev/urandom", stack.SpecialURandom),
		sys.SetupXattr("/app/data/db.sqlite", "user.checksum", 16),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	src := newSys()
	buildSample(t, src)
	snap := Capture(src)

	dst := newSys()
	if err := Restore(dst, "", snap); err != nil {
		t.Fatal(err)
	}
	ino, err := dst.FS.Resolve(nil, "/app/data/db.sqlite")
	if err != vfs.OK || ino.Size != 1<<20 {
		t.Fatalf("restored file: %v err=%v", ino, err)
	}
	target, err := dst.FS.Readlink(nil, "/app/current")
	if err != vfs.OK || target != "/app/data/db.sqlite" {
		t.Fatalf("restored symlink: %q err=%v", target, err)
	}
	if v, err := dst.FS.Getxattr(nil, "/app/data/db.sqlite", "user.checksum"); err != vfs.OK || len(v) != 16 {
		t.Fatalf("restored xattr: %d bytes err=%v", len(v), err)
	}
	sp, err := dst.FS.ResolveNoFollow(nil, "/dev/urandom")
	if err != vfs.OK || sp.Type != vfs.TypeSpecial {
		t.Fatalf("restored special: %v err=%v", sp, err)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	src := newSys()
	buildSample(t, src)
	snap := Capture(src)

	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(snap.Entries) {
		t.Fatalf("entry count %d != %d", len(got.Entries), len(snap.Entries))
	}
	// Restoring the parsed snapshot must produce the same tree.
	dst := newSys()
	if err := Restore(dst, "", got); err != nil {
		t.Fatal(err)
	}
	ino, errno := dst.FS.Resolve(nil, "/app/data/db.sqlite")
	if errno != vfs.OK || ino.Size != 1<<20 {
		t.Fatal("parsed snapshot restore mismatch")
	}
}

func TestRestoreWithPrefix(t *testing.T) {
	src := newSys()
	buildSample(t, src)
	snap := Capture(src)

	dst := newSys()
	if err := Restore(dst, "/bench0", snap); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.FS.Resolve(nil, "/bench0/app/data/db.sqlite"); err != vfs.OK {
		t.Fatalf("prefixed restore: %v", err)
	}
}

// Overlay init: restoring two snapshots into the same tree (the iPhoto +
// iTunes concurrent-replay scenario from §4.3.2).
func TestOverlayRestore(t *testing.T) {
	a := newSys()
	if err := a.SetupCreate("/Library/app_a/data", 1000); err != nil {
		t.Fatal(err)
	}
	if err := a.SetupSpecial("/dev/urandom", stack.SpecialURandom); err != nil {
		t.Fatal(err)
	}
	b := newSys()
	if err := b.SetupCreate("/Library/app_b/data", 2000); err != nil {
		t.Fatal(err)
	}
	if err := b.SetupSpecial("/dev/urandom", stack.SpecialURandom); err != nil {
		t.Fatal(err)
	}
	dst := newSys()
	if err := Restore(dst, "", Capture(a)); err != nil {
		t.Fatal(err)
	}
	if err := Restore(dst, "", Capture(b)); err != nil {
		t.Fatalf("overlay restore: %v", err)
	}
	if _, err := dst.FS.Resolve(nil, "/Library/app_a/data"); err != vfs.OK {
		t.Fatal("app_a missing")
	}
	if _, err := dst.FS.Resolve(nil, "/Library/app_b/data"); err != vfs.OK {
		t.Fatal("app_b missing")
	}
}

func TestDeltaRestore(t *testing.T) {
	src := newSys()
	buildSample(t, src)
	snap := Capture(src)

	dst := newSys()
	if err := Restore(dst, "", snap); err != nil {
		t.Fatal(err)
	}
	// Perturb: grow one file, delete another, add an extraneous one.
	ino, _ := dst.FS.Resolve(nil, "/app/data/db.sqlite")
	ino.Size = 999
	if err := dst.SetupUnlink("/app/cache/thumb.png"); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetupCreate("/app/data/junk.tmp", 10); err != nil {
		t.Fatal(err)
	}

	st, err := DeltaRestore(dst, "", snap)
	if err != nil {
		t.Fatal(err)
	}
	if st.Resized != 1 {
		t.Errorf("resized = %d, want 1", st.Resized)
	}
	if st.Created != 1 {
		t.Errorf("created = %d, want 1", st.Created)
	}
	if st.Removed != 1 {
		t.Errorf("removed = %d, want 1", st.Removed)
	}
	ino, errno := dst.FS.Resolve(nil, "/app/data/db.sqlite")
	if errno != vfs.OK || ino.Size != 1<<20 {
		t.Fatal("size not restored")
	}
	if _, errno := dst.FS.Resolve(nil, "/app/cache/thumb.png"); errno != vfs.OK {
		t.Fatal("deleted file not recreated")
	}
	if _, errno := dst.FS.Resolve(nil, "/app/data/junk.tmp"); errno != vfs.ENOENT {
		t.Fatal("extraneous file survived delta init")
	}
}

func TestDeltaRestoreNoChanges(t *testing.T) {
	src := newSys()
	buildSample(t, src)
	snap := Capture(src)
	dst := newSys()
	if err := Restore(dst, "", snap); err != nil {
		t.Fatal(err)
	}
	st, err := DeltaRestore(dst, "", snap)
	if err != nil {
		t.Fatal(err)
	}
	if st.Created != 0 || st.Resized != 0 || st.Removed != 0 {
		t.Fatalf("delta on identical tree: %+v", st)
	}
	if st.Kept == 0 {
		t.Fatal("nothing kept")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"garbage /a",
		"file /a",                  // missing size
		"file /a xx",               // bad size
		"slink /l",                 // missing target
		"xattr /nope \"user.k\" 3", // unknown path
		"dir",                      // too few
	}
	for _, c := range cases {
		if _, err := Decode(bytes.NewReader([]byte(c + "\n"))); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
}

func TestFromTrace(t *testing.T) {
	recs := []PreScanRecord{
		{Call: "open", Path: "/data/input.txt", FD: 3, OK: true},
		{Call: "read", FD: 3, Size: 5000, OK: true},
		{Call: "read", FD: 3, Size: 5000, OK: true},
		{Call: "open", Path: "/data/new.out", FD: 4, OK: true, Creates: true},
		{Call: "pread", FD: 3, Size: 100, Offset: 100000, OK: true},
		{Call: "stat", Path: "/etc/conf", OK: true},
		{Call: "stat", Path: "/missing", OK: false},
		{Call: "mkdir", Path: "/tmp/scratch", OK: true},
	}
	snap := FromTrace(recs)
	byPath := make(map[string]Entry)
	for _, e := range snap.Entries {
		byPath[e.Path] = e
	}
	f, ok := byPath["/data/input.txt"]
	if !ok || f.Kind != KindFile {
		t.Fatalf("input.txt entry: %+v", f)
	}
	if f.Size < 100100 {
		t.Fatalf("inferred size = %d, want >= 100100 (pread extent)", f.Size)
	}
	if _, ok := byPath["/data/new.out"]; ok {
		t.Fatal("trace-created file ended up in snapshot")
	}
	if _, ok := byPath["/missing"]; ok {
		t.Fatal("failed stat path ended up in snapshot")
	}
	if e, ok := byPath["/etc/conf"]; !ok || e.Kind != KindFile {
		t.Fatal("stat'd path missing from snapshot")
	}
	if e, ok := byPath["/data"]; !ok || e.Kind != KindDir {
		t.Fatal("parent dir missing")
	}
}

func TestDeltaRestoreRemovesNestedExtraneousTree(t *testing.T) {
	src := newSys()
	buildSample(t, src)
	snap := Capture(src)
	dst := newSys()
	if err := Restore(dst, "", snap); err != nil {
		t.Fatal(err)
	}
	// A replay left a whole subtree behind.
	if err := dst.SetupCreate("/app/data/scratch/deep/file.tmp", 10); err != nil {
		t.Fatal(err)
	}
	st, err := DeltaRestore(dst, "", snap)
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed < 3 { // scratch, deep, file.tmp
		t.Fatalf("removed = %d, want >= 3", st.Removed)
	}
	if _, errno := dst.FS.ResolveNoFollow(nil, "/app/data/scratch"); errno != vfs.ENOENT {
		t.Fatal("extraneous subtree survived delta init")
	}
}
