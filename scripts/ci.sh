#!/bin/sh
# CI gate: vet, race-enabled tests, a one-shot pass over the Compile
# benchmark, an export-determinism check under forced parallelism, then
# a perfstat snapshot so the perf trajectory is tracked per PR
# (BENCH_<tag>.json).
set -eu

cd "$(dirname "$0")/.."

tag="${1:-pr4}"

echo "== go vet"
go vet ./...

echo "== go test -race (GOMAXPROCS=8 stresses the kernel handoff paths)"
GOMAXPROCS=8 go test -race ./...

echo "== go test -bench=Compile -benchtime=1x"
go test -run '^$' -bench 'Compile' -benchtime 1x -benchmem .

echo "== determinism: byte-identical trace export under GOMAXPROCS=8"
GOMAXPROCS=8 go test -count=1 -run 'Deterministic' ./internal/experiments/
go build -o /tmp/artc-ci ./cmd/artc
GOMAXPROCS=8 /tmp/artc-ci trace -magritte pages_docphoto15 -quiet -o /tmp/ci-trace-1.json
GOMAXPROCS=8 /tmp/artc-ci trace -magritte pages_docphoto15 -quiet -o /tmp/ci-trace-2.json
cmp /tmp/ci-trace-1.json /tmp/ci-trace-2.json
rm -f /tmp/artc-ci /tmp/ci-trace-1.json /tmp/ci-trace-2.json

echo "== ingest: sequential and sharded strace parses agree byte for byte"
go build -o /tmp/artc-ci ./cmd/artc
go build -o /tmp/tracegen-ci ./cmd/tracegen
/tmp/tracegen-ci -format strace -threads 8 -ops 2500 -seed 42 -o /tmp/ci-ingest.strace -snapshot /tmp/ci-ingest.snap
/tmp/artc-ci convert -trace /tmp/ci-ingest.strace -format strace -to native -o /tmp/ci-ingest-seq.trace
GOMAXPROCS=8 /tmp/artc-ci convert -trace /tmp/ci-ingest.strace -format strace -shards 8 -to native -o /tmp/ci-ingest-shard.trace
cmp /tmp/ci-ingest-seq.trace /tmp/ci-ingest-shard.trace
GOMAXPROCS=8 go test -race -count=1 -run 'StraceGolden|ParseStraceAllocRegression|MergeShares|ShardedShares' ./internal/trace/
rm -f /tmp/artc-ci /tmp/tracegen-ci /tmp/ci-ingest.strace /tmp/ci-ingest.snap /tmp/ci-ingest-seq.trace /tmp/ci-ingest-shard.trace

echo "== perfstat -> BENCH_${tag}.json"
go run ./cmd/perfstat -o "BENCH_${tag}.json"

prev="BENCH_pr3.json"
if [ -f "$prev" ] && [ "$prev" != "BENCH_${tag}.json" ]; then
  echo "== benchcmp $prev vs BENCH_${tag}.json"
  go run ./cmd/benchcmp "$prev" "BENCH_${tag}.json"
fi
