#!/bin/sh
# CI gate, runnable whole or as one lane per CI job:
#
#   scripts/ci.sh [lane] [tag] [prev]
#
#   lane  one of vet-race | determinism | ingest | shard | chaos | cache |
#         fuzz | bench, or "all" (the default). For backward
#         compatibility a first argument that looks like a tag
#         (pr5, v2, ...) selects "all" with that tag.
#   tag   perfstat snapshot tag; the bench lane writes BENCH_<tag>.json.
#   prev  baseline BENCH_*.json for the benchcmp gate. When omitted, the
#         newest BENCH_*.json other than the current tag's is used.
#
# Lanes: vet-race (go vet + race-enabled tests), determinism
# (byte-identical trace export under forced parallelism), ingest
# (sequential and sharded strace parses agree), shard (sharded and
# sliced replay match serial byte for byte across GOMAXPROCS, shard
# counts, and slice granularities, the components and pipeline family
# specs regenerate exactly, and the chaos invariants hold through the
# sharded replayer), chaos (seeded fault sweep with
# per-seed verification plus a single-seed bit-repro check),
# fuzz (a short strace-lexer fuzz smoke), bench (perfstat snapshot and
# the benchcmp regression gate).
set -eu

cd "$(dirname "$0")/.."

lane="${1:-all}"
tag="${2:-pr9}"
prev="${3:-}"
case "$lane" in
  vet-race|determinism|ingest|shard|chaos|cache|fuzz|bench|all) ;;
  *) tag="$lane"; lane="all" ;;
esac

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM

# Newest BENCH_*.json other than the current tag's, by version order, so
# the gate always compares against the latest landed snapshot.
latest_bench() {
  ls BENCH_*.json 2>/dev/null | grep -v "^BENCH_${tag}\.json\$" | sort -V | tail -n 1
}

vet_race() {
  echo "== go vet"
  go vet ./...
  echo "== go test -race (GOMAXPROCS=8 stresses the kernel handoff paths)"
  GOMAXPROCS=8 go test -race ./...
}

determinism() {
  echo "== determinism: byte-identical trace export under GOMAXPROCS=8"
  GOMAXPROCS=8 go test -count=1 -run 'Deterministic' ./internal/experiments/
  go build -o "$tmp/artc" ./cmd/artc
  GOMAXPROCS=8 "$tmp/artc" trace -magritte pages_docphoto15 -quiet -o "$tmp/trace-1.json"
  GOMAXPROCS=8 "$tmp/artc" trace -magritte pages_docphoto15 -quiet -o "$tmp/trace-2.json"
  cmp "$tmp/trace-1.json" "$tmp/trace-2.json"
}

ingest() {
  echo "== ingest: sequential and sharded strace parses agree byte for byte"
  go build -o "$tmp/artc" ./cmd/artc
  go build -o "$tmp/tracegen" ./cmd/tracegen
  "$tmp/tracegen" -format strace -threads 8 -ops 2500 -seed 42 \
    -o "$tmp/ingest.strace" -snapshot "$tmp/ingest.snap"
  "$tmp/artc" convert -trace "$tmp/ingest.strace" -format strace -to native -o "$tmp/ingest-seq.trace"
  GOMAXPROCS=8 "$tmp/artc" convert -trace "$tmp/ingest.strace" -format strace -shards 8 \
    -to native -o "$tmp/ingest-shard.trace"
  cmp "$tmp/ingest-seq.trace" "$tmp/ingest-shard.trace"
  GOMAXPROCS=8 go test -race -count=1 \
    -run 'StraceGolden|ParseStraceAllocRegression|MergeShares|ShardedShares' ./internal/trace/
}

shard() {
  echo "== shard: property + differential tests under -race"
  GOMAXPROCS=8 go test -race -count=1 -run 'Partition|Sharded|Sliced|ComponentsFamily|PipelineFamily' \
    ./internal/shard/ ./internal/artc/ ./internal/magritte/ ./internal/workload/ \
    ./internal/fault/chaostest/
  go build -o "$tmp/artc" ./cmd/artc
  go build -o "$tmp/tracegen" ./cmd/tracegen
  echo "== shard: sharded trace export matches serial at GOMAXPROCS=1/2/8"
  "$tmp/artc" trace -magritte pages_docphoto15 -quiet -o "$tmp/shard-serial.json"
  for procs in 1 2 8; do
    for n in 1 2 4 8; do
      GOMAXPROCS=$procs "$tmp/artc" trace -magritte pages_docphoto15 -shards $n \
        -quiet -o "$tmp/shard-$procs-$n.json"
      cmp "$tmp/shard-serial.json" "$tmp/shard-$procs-$n.json"
    done
  done
  echo "== shard: components family spec regenerates byte for byte"
  "$tmp/tracegen" -family components -components 5 -ops 200 -skew 0.5 -seed 11 \
    -o "$tmp/components.trace" -snapshot "$tmp/components.snap"
  cmp internal/workload/testdata/components_small.trace "$tmp/components.trace"
  echo "== shard: pipeline family spec regenerates byte for byte"
  "$tmp/tracegen" -family pipeline -stages 4 -ops 200 -handoff 16 -seed 11 \
    -o "$tmp/pipeline.trace" -snapshot "$tmp/pipeline.snap"
  cmp internal/workload/testdata/pipeline_small.trace "$tmp/pipeline.trace"
  echo "== shard: hot pipeline family spec regenerates byte for byte"
  "$tmp/tracegen" -family pipeline -stages 4 -ops 200 -handoff 16 -seed 11 \
    -hot-stage 2 -hot-pages 4 \
    -o "$tmp/pipeline-hot.trace" -snapshot "$tmp/pipeline-hot.snap"
  cmp internal/workload/testdata/pipeline_hot_small.trace "$tmp/pipeline-hot.trace"
  echo "== shard: sliced pipeline export matches serial across shard counts"
  "$tmp/artc" compile -trace "$tmp/pipeline.trace" -snapshot "$tmp/pipeline.snap" \
    -o "$tmp/pipeline.bench"
  "$tmp/artc" trace -bench "$tmp/pipeline.bench" -warm -no-samples -quiet \
    -o "$tmp/slice-serial.json"
  for n in 1 2 4 8; do
    GOMAXPROCS=8 "$tmp/artc" trace -bench "$tmp/pipeline.bench" -shards $n \
      -slice-actions 700 -warm -no-samples -quiet -o "$tmp/slice-$n.json"
    cmp "$tmp/slice-serial.json" "$tmp/slice-$n.json"
  done
  echo "== shard: profile-guided re-cut round-trip (auto re-cuts, stays byte-identical to serial)"
  "$tmp/tracegen" -family pipeline -stages 4 -ops 200 -handoff 8 -seed 7 \
    -hot-stage 2 -hot-pages 32 \
    -o "$tmp/profcorpus.trace" -snapshot "$tmp/profcorpus.snap"
  "$tmp/artc" compile -trace "$tmp/profcorpus.trace" -snapshot "$tmp/profcorpus.snap" \
    -no-cache -o "$tmp/profcorpus.bench"
  "$tmp/artc" trace -bench "$tmp/profcorpus.bench" -warm -no-samples -quiet \
    -o "$tmp/prof-serial.json"
  GOMAXPROCS=8 "$tmp/artc" trace -bench "$tmp/profcorpus.bench" -shards 2 \
    -slice-actions 1300 -warm -no-samples -slice-profile off -no-cache \
    -o "$tmp/prof-static.json" 2>"$tmp/prof-static.err"
  GOMAXPROCS=8 "$tmp/artc" trace -bench "$tmp/profcorpus.bench" -shards 2 \
    -slice-actions 1300 -warm -no-samples -slice-profile auto \
    -cache-dir "$tmp/profcache" -o "$tmp/prof-auto.json" 2>"$tmp/prof-auto.err"
  grep -q 'slice profile: miss' "$tmp/prof-auto.err"
  fp_static="$(sed -n 's/.*profiled=false fingerprint=//p' "$tmp/prof-static.err")"
  fp_auto="$(sed -n 's/.*profiled=true fingerprint=//p' "$tmp/prof-auto.err")"
  if [ -z "$fp_static" ] || [ -z "$fp_auto" ] || [ "$fp_static" = "$fp_auto" ]; then
    echo "profiled plan did not re-cut (static=$fp_static auto=$fp_auto)" >&2; exit 1
  fi
  cmp "$tmp/prof-serial.json" "$tmp/prof-auto.json"
  GOMAXPROCS=8 "$tmp/artc" trace -bench "$tmp/profcorpus.bench" -shards 2 \
    -slice-actions 1300 -warm -no-samples -slice-profile auto \
    -cache-dir "$tmp/profcache" -o "$tmp/prof-auto2.json" 2>"$tmp/prof-auto2.err"
  grep -q 'slice profile: hit' "$tmp/prof-auto2.err"
  cmp "$tmp/prof-auto.json" "$tmp/prof-auto2.json"
  echo "== shard: chaos invariants hold through the sharded replayer"
  GOMAXPROCS=8 "$tmp/artc" chaos -magritte pages_docphoto15 -gen-scale 0.01 \
    -seeds 8 -verify -shards 4
  echo "== shard: chaos invariants hold through the sliced replayer"
  GOMAXPROCS=8 "$tmp/artc" chaos -magritte pages_docphoto15 -gen-scale 0.01 \
    -seeds 4 -verify -shards 4 -slice-actions 500
}

chaos() {
  go build -o "$tmp/artc" ./cmd/artc
  echo "== chaos: 16-seed fault sweep with per-seed double-run verification"
  GOMAXPROCS=8 "$tmp/artc" chaos -magritte pages_docphoto15 -gen-scale 0.01 -seeds 16 -verify
  echo "== chaos: seed 3 export is bit-reproducible"
  "$tmp/artc" chaos -magritte pages_docphoto15 -gen-scale 0.01 -seed 3 -quiet -o "$tmp/chaos-a.json"
  "$tmp/artc" chaos -magritte pages_docphoto15 -gen-scale 0.01 -seed 3 -quiet -o "$tmp/chaos-b.json"
  cmp "$tmp/chaos-a.json" "$tmp/chaos-b.json"
}

cache() {
  go build -o "$tmp/artc" ./cmd/artc
  echo "== cache: warm load is byte-identical to the cold compile"
  "$tmp/artc" trace -magritte pages_docphoto15 -cache-dir "$tmp/cache" \
    -o "$tmp/cache-cold.json" >/dev/null 2>"$tmp/cache-cold.err"
  grep -q "cache: miss" "$tmp/cache-cold.err"
  "$tmp/artc" trace -magritte pages_docphoto15 -cache-dir "$tmp/cache" \
    -o "$tmp/cache-warm.json" >/dev/null 2>"$tmp/cache-warm.err"
  grep -q "cache: hit" "$tmp/cache-warm.err"
  cmp "$tmp/cache-cold.json" "$tmp/cache-warm.json"
  echo "== cache: a bit-flipped artifact is detected and recompiled"
  art="$(find "$tmp/cache" -name '*.artc' | head -n 1)"
  dd if=/dev/zero of="$art" bs=1 seek=100 count=4 conv=notrunc 2>/dev/null
  "$tmp/artc" trace -magritte pages_docphoto15 -cache-dir "$tmp/cache" \
    -o "$tmp/cache-fixed.json" >/dev/null 2>"$tmp/cache-fixed.err"
  grep -q "corrupt" "$tmp/cache-fixed.err"
  cmp "$tmp/cache-cold.json" "$tmp/cache-fixed.json"
  echo "== cache: a truncated binary artifact is rejected"
  art="$(find "$tmp/cache" -name '*.artc' | head -n 1)"
  head -c 200 "$art" > "$tmp/truncated.artc"
  if "$tmp/artc" inspect -bench "$tmp/truncated.artc" 2>"$tmp/cache-trunc.err"; then
    echo "truncated artifact was accepted" >&2; exit 1
  fi
  grep -qi "truncat" "$tmp/cache-trunc.err"
}

fuzz() {
  echo "== fuzz: 20s strace fast-lexer vs reference smoke"
  go test -run '^$' -fuzz 'FuzzStraceFastVsReference' -fuzztime 20s ./internal/trace/
  echo "== fuzz: 20s binary artifact decoder smoke"
  go test -run '^$' -fuzz 'FuzzDecodeBinary' -fuzztime 20s -fuzzminimizetime 5s ./internal/artc/
}

bench() {
  echo "== go test -bench=Compile -benchtime=1x"
  go test -run '^$' -bench 'Compile' -benchtime 1x -benchmem .
  echo "== perfstat -> BENCH_${tag}.json"
  go run ./cmd/perfstat -o "BENCH_${tag}.json"
  base="${prev:-$(latest_bench)}"
  if [ -n "$base" ] && [ -f "$base" ]; then
    echo "== benchcmp gate: $base vs BENCH_${tag}.json"
    go run ./cmd/benchcmp -gate "$base" "BENCH_${tag}.json"
  else
    echo "== benchcmp gate skipped: no baseline BENCH_*.json"
  fi
}

case "$lane" in
  vet-race)    vet_race ;;
  determinism) determinism ;;
  ingest)      ingest ;;
  shard)       shard ;;
  chaos)       chaos ;;
  cache)       cache ;;
  fuzz)        fuzz ;;
  bench)       bench ;;
  all)         vet_race; determinism; ingest; shard; chaos; cache; fuzz; bench ;;
esac
