#!/bin/sh
# CI gate, runnable whole or as one lane per CI job:
#
#   scripts/ci.sh [lane] [tag] [prev]
#
#   lane  one of lint | vet-race | determinism | ingest | shard | chaos |
#         cache | fuzz | service | service-fault | bench, or "all" (the
#         default). For backward compatibility a first argument that
#         looks like a tag (pr5, v2, ...) selects "all" with that tag.
#   tag   perfstat snapshot tag; the bench lane writes BENCH_<tag>.json.
#         Defaults to pr<N+1> where N is the newest committed
#         BENCH_pr<N>.json, so the script needs no edit per PR.
#   prev  baseline BENCH_*.json for the benchcmp gate. When omitted, the
#         newest BENCH_*.json other than the current tag's is used.
#
# Lanes: lint (gofmt + go vet), vet-race (race-enabled tests),
# determinism (byte-identical trace export under forced parallelism),
# ingest (sequential and sharded strace parses agree), shard (sharded
# and sliced replay match serial byte for byte across GOMAXPROCS, shard
# counts, and slice granularities, the components and pipeline family
# specs regenerate exactly, and the chaos invariants hold through the
# sharded replayer), chaos (seeded fault sweep with per-seed
# verification plus a single-seed bit-repro check), cache (artifact
# cache hit/corruption behavior), fuzz (a short strace-lexer fuzz
# smoke), service (boot artcd, drive a replay over HTTP, compare the
# export byte for byte against the artc CLI), service-fault (overfill a
# tenant queue, assert bounded 429 backpressure and a clean SIGTERM
# drain), bench (perfstat snapshot and the benchcmp regression gate).
set -eu

cd "$(dirname "$0")/.."

# Default perfstat tag: one past the newest committed BENCH_pr<N>.json,
# so a new PR's snapshot never clobbers a landed baseline.
default_tag() {
  last="$(ls BENCH_*.json 2>/dev/null |
    sed -n 's/^BENCH_pr\([0-9][0-9]*\)\.json$/\1/p' | sort -n | tail -n 1)"
  if [ -n "$last" ]; then
    echo "pr$((last + 1))"
  else
    echo "local"
  fi
}

lane="${1:-all}"
tag="${2:-$(default_tag)}"
prev="${3:-}"
case "$lane" in
  lint|vet-race|determinism|ingest|shard|chaos|cache|fuzz|service|service-fault|bench|all) ;;
  *) tag="$lane"; lane="all" ;;
esac

tmp="$(mktemp -d)"
artcd_pid=""
trap '[ -n "$artcd_pid" ] && kill "$artcd_pid" 2>/dev/null; rm -rf "$tmp"' EXIT INT TERM

# Newest BENCH_*.json other than the current tag's, by version order, so
# the gate always compares against the latest landed snapshot.
latest_bench() {
  ls BENCH_*.json 2>/dev/null | grep -v "^BENCH_${tag}\.json\$" | sort -V | tail -n 1
}

lint() {
  echo "== gofmt"
  fmt="$(gofmt -l .)"
  if [ -n "$fmt" ]; then
    echo "gofmt wants to rewrite:" >&2
    echo "$fmt" >&2
    exit 1
  fi
  echo "== go vet"
  go vet ./...
}

vet_race() {
  echo "== go test -race (GOMAXPROCS=8 stresses the kernel handoff paths)"
  GOMAXPROCS=8 go test -race ./...
}

determinism() {
  echo "== determinism: byte-identical trace export under GOMAXPROCS=8"
  GOMAXPROCS=8 go test -count=1 -run 'Deterministic' ./internal/experiments/
  go build -o "$tmp/artc" ./cmd/artc
  GOMAXPROCS=8 "$tmp/artc" trace -magritte pages_docphoto15 -quiet -o "$tmp/trace-1.json"
  GOMAXPROCS=8 "$tmp/artc" trace -magritte pages_docphoto15 -quiet -o "$tmp/trace-2.json"
  cmp "$tmp/trace-1.json" "$tmp/trace-2.json"
}

ingest() {
  echo "== ingest: sequential and sharded strace parses agree byte for byte"
  go build -o "$tmp/artc" ./cmd/artc
  go build -o "$tmp/tracegen" ./cmd/tracegen
  "$tmp/tracegen" -format strace -threads 8 -ops 2500 -seed 42 \
    -o "$tmp/ingest.strace" -snapshot "$tmp/ingest.snap"
  "$tmp/artc" convert -trace "$tmp/ingest.strace" -format strace -to native -o "$tmp/ingest-seq.trace"
  GOMAXPROCS=8 "$tmp/artc" convert -trace "$tmp/ingest.strace" -format strace -shards 8 \
    -to native -o "$tmp/ingest-shard.trace"
  cmp "$tmp/ingest-seq.trace" "$tmp/ingest-shard.trace"
  GOMAXPROCS=8 go test -race -count=1 \
    -run 'StraceGolden|ParseStraceAllocRegression|MergeShares|ShardedShares' ./internal/trace/
}

shard() {
  echo "== shard: property + differential tests under -race"
  GOMAXPROCS=8 go test -race -count=1 -run 'Partition|Sharded|Sliced|ComponentsFamily|PipelineFamily' \
    ./internal/shard/ ./internal/artc/ ./internal/magritte/ ./internal/workload/ \
    ./internal/fault/chaostest/
  go build -o "$tmp/artc" ./cmd/artc
  go build -o "$tmp/tracegen" ./cmd/tracegen
  echo "== shard: sharded trace export matches serial at GOMAXPROCS=1/2/8"
  "$tmp/artc" trace -magritte pages_docphoto15 -quiet -o "$tmp/shard-serial.json"
  for procs in 1 2 8; do
    for n in 1 2 4 8; do
      GOMAXPROCS=$procs "$tmp/artc" trace -magritte pages_docphoto15 -shards $n \
        -quiet -o "$tmp/shard-$procs-$n.json"
      cmp "$tmp/shard-serial.json" "$tmp/shard-$procs-$n.json"
    done
  done
  echo "== shard: components family spec regenerates byte for byte"
  "$tmp/tracegen" -family components -components 5 -ops 200 -skew 0.5 -seed 11 \
    -o "$tmp/components.trace" -snapshot "$tmp/components.snap"
  cmp internal/workload/testdata/components_small.trace "$tmp/components.trace"
  echo "== shard: pipeline family spec regenerates byte for byte"
  "$tmp/tracegen" -family pipeline -stages 4 -ops 200 -handoff 16 -seed 11 \
    -o "$tmp/pipeline.trace" -snapshot "$tmp/pipeline.snap"
  cmp internal/workload/testdata/pipeline_small.trace "$tmp/pipeline.trace"
  echo "== shard: hot pipeline family spec regenerates byte for byte"
  "$tmp/tracegen" -family pipeline -stages 4 -ops 200 -handoff 16 -seed 11 \
    -hot-stage 2 -hot-pages 4 \
    -o "$tmp/pipeline-hot.trace" -snapshot "$tmp/pipeline-hot.snap"
  cmp internal/workload/testdata/pipeline_hot_small.trace "$tmp/pipeline-hot.trace"
  echo "== shard: sliced pipeline export matches serial across shard counts"
  "$tmp/artc" compile -trace "$tmp/pipeline.trace" -snapshot "$tmp/pipeline.snap" \
    -o "$tmp/pipeline.bench"
  "$tmp/artc" trace -bench "$tmp/pipeline.bench" -warm -no-samples -quiet \
    -o "$tmp/slice-serial.json"
  for n in 1 2 4 8; do
    GOMAXPROCS=8 "$tmp/artc" trace -bench "$tmp/pipeline.bench" -shards $n \
      -slice-actions 700 -warm -no-samples -quiet -o "$tmp/slice-$n.json"
    cmp "$tmp/slice-serial.json" "$tmp/slice-$n.json"
  done
  echo "== shard: profile-guided re-cut round-trip (auto re-cuts, stays byte-identical to serial)"
  "$tmp/tracegen" -family pipeline -stages 4 -ops 200 -handoff 8 -seed 7 \
    -hot-stage 2 -hot-pages 32 \
    -o "$tmp/profcorpus.trace" -snapshot "$tmp/profcorpus.snap"
  "$tmp/artc" compile -trace "$tmp/profcorpus.trace" -snapshot "$tmp/profcorpus.snap" \
    -no-cache -o "$tmp/profcorpus.bench"
  "$tmp/artc" trace -bench "$tmp/profcorpus.bench" -warm -no-samples -quiet \
    -o "$tmp/prof-serial.json"
  GOMAXPROCS=8 "$tmp/artc" trace -bench "$tmp/profcorpus.bench" -shards 2 \
    -slice-actions 1300 -warm -no-samples -slice-profile off -no-cache \
    -o "$tmp/prof-static.json" 2>"$tmp/prof-static.err"
  GOMAXPROCS=8 "$tmp/artc" trace -bench "$tmp/profcorpus.bench" -shards 2 \
    -slice-actions 1300 -warm -no-samples -slice-profile auto \
    -cache-dir "$tmp/profcache" -o "$tmp/prof-auto.json" 2>"$tmp/prof-auto.err"
  grep -q 'slice profile: miss' "$tmp/prof-auto.err"
  fp_static="$(sed -n 's/.*profiled=false fingerprint=//p' "$tmp/prof-static.err")"
  fp_auto="$(sed -n 's/.*profiled=true fingerprint=//p' "$tmp/prof-auto.err")"
  if [ -z "$fp_static" ] || [ -z "$fp_auto" ] || [ "$fp_static" = "$fp_auto" ]; then
    echo "profiled plan did not re-cut (static=$fp_static auto=$fp_auto)" >&2; exit 1
  fi
  cmp "$tmp/prof-serial.json" "$tmp/prof-auto.json"
  GOMAXPROCS=8 "$tmp/artc" trace -bench "$tmp/profcorpus.bench" -shards 2 \
    -slice-actions 1300 -warm -no-samples -slice-profile auto \
    -cache-dir "$tmp/profcache" -o "$tmp/prof-auto2.json" 2>"$tmp/prof-auto2.err"
  grep -q 'slice profile: hit' "$tmp/prof-auto2.err"
  cmp "$tmp/prof-auto.json" "$tmp/prof-auto2.json"
  echo "== shard: chaos invariants hold through the sharded replayer"
  GOMAXPROCS=8 "$tmp/artc" chaos -magritte pages_docphoto15 -gen-scale 0.01 \
    -seeds 8 -verify -shards 4
  echo "== shard: chaos invariants hold through the sliced replayer"
  GOMAXPROCS=8 "$tmp/artc" chaos -magritte pages_docphoto15 -gen-scale 0.01 \
    -seeds 4 -verify -shards 4 -slice-actions 500
}

chaos() {
  go build -o "$tmp/artc" ./cmd/artc
  echo "== chaos: 16-seed fault sweep with per-seed double-run verification"
  GOMAXPROCS=8 "$tmp/artc" chaos -magritte pages_docphoto15 -gen-scale 0.01 -seeds 16 -verify
  echo "== chaos: seed 3 export is bit-reproducible"
  "$tmp/artc" chaos -magritte pages_docphoto15 -gen-scale 0.01 -seed 3 -quiet -o "$tmp/chaos-a.json"
  "$tmp/artc" chaos -magritte pages_docphoto15 -gen-scale 0.01 -seed 3 -quiet -o "$tmp/chaos-b.json"
  cmp "$tmp/chaos-a.json" "$tmp/chaos-b.json"
}

cache() {
  go build -o "$tmp/artc" ./cmd/artc
  echo "== cache: warm load is byte-identical to the cold compile"
  "$tmp/artc" trace -magritte pages_docphoto15 -cache-dir "$tmp/cache" \
    -o "$tmp/cache-cold.json" >/dev/null 2>"$tmp/cache-cold.err"
  grep -q "cache: miss" "$tmp/cache-cold.err"
  "$tmp/artc" trace -magritte pages_docphoto15 -cache-dir "$tmp/cache" \
    -o "$tmp/cache-warm.json" >/dev/null 2>"$tmp/cache-warm.err"
  grep -q "cache: hit" "$tmp/cache-warm.err"
  cmp "$tmp/cache-cold.json" "$tmp/cache-warm.json"
  echo "== cache: a bit-flipped artifact is detected and recompiled"
  art="$(find "$tmp/cache" -name '*.artc' | head -n 1)"
  dd if=/dev/zero of="$art" bs=1 seek=100 count=4 conv=notrunc 2>/dev/null
  "$tmp/artc" trace -magritte pages_docphoto15 -cache-dir "$tmp/cache" \
    -o "$tmp/cache-fixed.json" >/dev/null 2>"$tmp/cache-fixed.err"
  grep -q "corrupt" "$tmp/cache-fixed.err"
  cmp "$tmp/cache-cold.json" "$tmp/cache-fixed.json"
  echo "== cache: a truncated binary artifact is rejected"
  art="$(find "$tmp/cache" -name '*.artc' | head -n 1)"
  head -c 200 "$art" > "$tmp/truncated.artc"
  if "$tmp/artc" inspect -bench "$tmp/truncated.artc" 2>"$tmp/cache-trunc.err"; then
    echo "truncated artifact was accepted" >&2; exit 1
  fi
  grep -qi "truncat" "$tmp/cache-trunc.err"
}

fuzz() {
  echo "== fuzz: 20s strace fast-lexer vs reference smoke"
  go test -run '^$' -fuzz 'FuzzStraceFastVsReference' -fuzztime 20s ./internal/trace/
  echo "== fuzz: 20s binary artifact decoder smoke"
  go test -run '^$' -fuzz 'FuzzDecodeBinary' -fuzztime 20s -fuzzminimizetime 5s ./internal/artc/
}

# start_artcd boots the daemon on an ephemeral port with the given
# extra flags, parses the announced address from its stderr log, and
# sets $base. stop_artcd sends SIGTERM and asserts a clean drain.
start_artcd() {
  : > "$tmp/artcd.log"
  "$tmp/artcd" -addr 127.0.0.1:0 "$@" 2>"$tmp/artcd.log" &
  artcd_pid=$!
  addr=""
  i=0
  while [ $i -lt 100 ]; do
    addr="$(sed -n 's/^artcd: listening on //p' "$tmp/artcd.log")"
    [ -n "$addr" ] && break
    i=$((i + 1))
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "artcd never announced its listen address" >&2
    cat "$tmp/artcd.log" >&2
    exit 1
  fi
  base="http://$addr"
}

stop_artcd() {
  kill -TERM "$artcd_pid"
  wait "$artcd_pid" || { echo "artcd exited nonzero" >&2; exit 1; }
  artcd_pid=""
  grep -q "drained, exiting" "$tmp/artcd.log"
}

service() {
  echo "== service: HTTP replay export matches the artc CLI byte for byte"
  go build -o "$tmp/artc" ./cmd/artc
  go build -o "$tmp/artcd" ./cmd/artcd
  go build -o "$tmp/artcdctl" ./cmd/artcdctl
  go build -o "$tmp/tracegen" ./cmd/tracegen
  "$tmp/tracegen" -workload magritte:pages_docphoto15 -scale 0.01 -seed 5 \
    -o "$tmp/svc.trace" -snapshot "$tmp/svc.snap"
  "$tmp/artc" compile -trace "$tmp/svc.trace" -snapshot "$tmp/svc.snap" \
    -no-cache -o "$tmp/svc.bench"
  "$tmp/artc" trace -bench "$tmp/svc.bench" -quiet -o "$tmp/svc-cli.json"
  start_artcd -cache-dir "$tmp/svc-cache"
  trace_id="$("$tmp/artcdctl" -base "$base" -tenant ci upload "$tmp/svc.trace")"
  snap_id="$("$tmp/artcdctl" -base "$base" -tenant ci upload "$tmp/svc.snap")"
  printf '{"kind":"export","trace":"%s","snapshot":"%s"}\n' "$trace_id" "$snap_id" \
    > "$tmp/svc-job.json"
  job="$("$tmp/artcdctl" -base "$base" -tenant ci submit "$tmp/svc-job.json")"
  "$tmp/artcdctl" -base "$base" -tenant ci wait "$job" >/dev/null
  "$tmp/artcdctl" -base "$base" -tenant ci result -o "$tmp/svc-http.json" "$job"
  cmp "$tmp/svc-cli.json" "$tmp/svc-http.json"
  echo "== service: metrics count the job and the compile"
  "$tmp/artcdctl" -base "$base" metrics > "$tmp/svc-metrics.txt"
  grep -q "^artcd_jobs_done 1\$" "$tmp/svc-metrics.txt"
  grep -q "^artcd_compiles 1\$" "$tmp/svc-metrics.txt"
  grep -q "^artcd_cache_misses 1\$" "$tmp/svc-metrics.txt"
  echo "== service: SIGTERM drains clean"
  stop_artcd
}

service_fault() {
  echo "== service-fault: a full tenant queue answers 429, bounded and observable"
  go build -o "$tmp/artcd" ./cmd/artcd
  go build -o "$tmp/artcdctl" ./cmd/artcdctl
  start_artcd -no-cache -workers 1 -queue-bound 2 -debug-sleep-kind
  ctl() { "$tmp/artcdctl" -base "$base" -tenant ci "$@"; }
  printf '{"kind":"sleep","ms":30000}\n' > "$tmp/sleeper.json"
  printf '{"kind":"sleep","ms":0}\n' > "$tmp/sleep0.json"
  sleeper="$(ctl submit "$tmp/sleeper.json")"
  i=0
  while ! ctl status "$sleeper" | grep -q '"state":"running"'; do
    i=$((i + 1))
    [ $i -lt 100 ] || { echo "sleeper never started running" >&2; exit 1; }
    sleep 0.1
  done
  ctl submit "$tmp/sleep0.json" >/dev/null
  victim="$(ctl submit "$tmp/sleep0.json")"
  set +e
  rejected="$(ctl submit "$tmp/sleep0.json" 2>"$tmp/reject.err")"
  code=$?
  set -e
  if [ "$code" -ne 7 ]; then
    echo "expected backpressure exit code 7, got $code ($rejected)" >&2
    exit 1
  fi
  if [ "$(printf '%s\n' "$rejected" | wc -l)" -ne 1 ]; then
    echo "429 body is not a single line: $rejected" >&2
    exit 1
  fi
  printf '%s' "$rejected" | grep -q '"error":"queue_full"'
  grep -q '^retry-after: ' "$tmp/reject.err"
  echo "== service-fault: canceling a queued job frees its queue slot"
  ctl cancel "$victim" | grep -q '"state":"canceled"'
  ctl submit "$tmp/sleep0.json" >/dev/null
  ctl cancel "$sleeper" >/dev/null
  i=0
  while ! ctl status "$sleeper" | grep -q '"state":"canceled"'; do
    i=$((i + 1))
    [ $i -lt 100 ] || { echo "running sleeper never observed its cancel" >&2; exit 1; }
    sleep 0.1
  done
  echo "== service-fault: metrics expose the rejection"
  "$tmp/artcdctl" -base "$base" metrics | grep -q "^artcd_rejected_backpressure 1\$"
  echo "== service-fault: SIGTERM drains the backlog clean"
  stop_artcd
}

bench() {
  echo "== go test -bench=Compile -benchtime=1x"
  go test -run '^$' -bench 'Compile' -benchtime 1x -benchmem .
  echo "== perfstat -> BENCH_${tag}.json"
  go run ./cmd/perfstat -o "BENCH_${tag}.json"
  base="${prev:-$(latest_bench)}"
  if [ -n "$base" ] && [ -f "$base" ]; then
    echo "== benchcmp gate: $base vs BENCH_${tag}.json"
    go run ./cmd/benchcmp -gate "$base" "BENCH_${tag}.json"
  else
    echo "== benchcmp gate skipped: no baseline BENCH_*.json"
  fi
}

case "$lane" in
  lint)          lint ;;
  vet-race)      vet_race ;;
  determinism)   determinism ;;
  ingest)        ingest ;;
  shard)         shard ;;
  chaos)         chaos ;;
  cache)         cache ;;
  fuzz)          fuzz ;;
  service)       service ;;
  service-fault) service_fault ;;
  bench)         bench ;;
  all)           lint; vet_race; determinism; ingest; shard; chaos; cache
                 fuzz; service; service_fault; bench ;;
esac
