#!/bin/sh
# CI gate: vet, race-enabled tests, a one-shot pass over the Compile
# benchmark, then a perfstat snapshot so the perf trajectory is tracked
# per PR (BENCH_<tag>.json).
set -eu

cd "$(dirname "$0")/.."

tag="${1:-pr1}"

echo "== go vet"
go vet ./...

echo "== go test -race"
go test -race ./...

echo "== go test -bench=Compile -benchtime=1x"
go test -run '^$' -bench 'Compile' -benchtime 1x -benchmem .

echo "== perfstat -> BENCH_${tag}.json"
go run ./cmd/perfstat -o "BENCH_${tag}.json"
