#!/bin/sh
# CI gate: vet, race-enabled tests, a one-shot pass over the Compile
# benchmark, an export-determinism check under forced parallelism, then
# a perfstat snapshot so the perf trajectory is tracked per PR
# (BENCH_<tag>.json).
set -eu

cd "$(dirname "$0")/.."

tag="${1:-pr3}"

echo "== go vet"
go vet ./...

echo "== go test -race (GOMAXPROCS=8 stresses the kernel handoff paths)"
GOMAXPROCS=8 go test -race ./...

echo "== go test -bench=Compile -benchtime=1x"
go test -run '^$' -bench 'Compile' -benchtime 1x -benchmem .

echo "== determinism: byte-identical trace export under GOMAXPROCS=8"
GOMAXPROCS=8 go test -count=1 -run 'Deterministic' ./internal/experiments/
go build -o /tmp/artc-ci ./cmd/artc
GOMAXPROCS=8 /tmp/artc-ci trace -magritte pages_docphoto15 -quiet -o /tmp/ci-trace-1.json
GOMAXPROCS=8 /tmp/artc-ci trace -magritte pages_docphoto15 -quiet -o /tmp/ci-trace-2.json
cmp /tmp/ci-trace-1.json /tmp/ci-trace-2.json
rm -f /tmp/artc-ci /tmp/ci-trace-1.json /tmp/ci-trace-2.json

echo "== perfstat -> BENCH_${tag}.json"
go run ./cmd/perfstat -o "BENCH_${tag}.json"

prev="BENCH_pr2.json"
if [ -f "$prev" ] && [ "$prev" != "BENCH_${tag}.json" ]; then
  echo "== benchcmp $prev vs BENCH_${tag}.json"
  go run ./cmd/benchcmp "$prev" "BENCH_${tag}.json"
fi
