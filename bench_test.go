package rootreplay

import (
	"testing"

	"rootreplay/internal/artc"
	"rootreplay/internal/experiments"
	"rootreplay/internal/fault"
	"rootreplay/internal/magritte"
	"rootreplay/internal/obs"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
)

// One benchmark per table and figure in the paper's evaluation. Each
// runs the corresponding experiment at Quick scale and reports the
// headline derived metrics alongside the usual ns/op:
//
//	go test -bench=. -benchmem
//
// The cmd/rootbench tool runs the same experiments at full scale and
// prints the complete row/series output.

func BenchmarkTable3Magritte(b *testing.B) {
	// The suite's semantic-correctness comparison on three
	// representative traces (handoff-heavy, moderate, independent); the
	// full 34 run in cmd/rootbench and TestFullMagritteSuite.
	names := []string{"iphoto_import400", "pages_create15", "keynote_start20"}
	for i := 0; i < b.N; i++ {
		totalUC, totalARTC := 0, 0
		for _, n := range names {
			spec, ok := magritte.SpecByName(n)
			if !ok {
				b.Fatal("unknown spec")
			}
			opts := magritte.DefaultSuiteOptions()
			opts.Gen.Scale = 0.005
			res, err := magritte.RunOne(spec, opts)
			if err != nil {
				b.Fatal(err)
			}
			totalUC += res.UCErrors
			totalARTC += res.ARTCErrors
		}
		if i == b.N-1 {
			b.ReportMetric(float64(totalUC), "uc-errors")
			b.ReportMetric(float64(totalARTC), "artc-errors")
		}
	}
}

func BenchmarkFig5aParallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5a(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			c8 := res.Comparisons[2]
			for _, r := range c8.Runs {
				b.ReportMetric(r.Err*100, string(r.Method)+"-err-pct")
			}
		}
	}
}

func BenchmarkFig5bRAID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5b(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range res.Comparisons[0].Runs {
				b.ReportMetric(r.Err*100, string(r.Method)+"-err-pct")
			}
		}
	}
}

func BenchmarkFig5cCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5c(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range res.Comparisons[0].Runs {
				b.ReportMetric(r.Err*100, string(r.Method)+"-err-pct")
			}
		}
	}
}

func BenchmarkFig5dSlice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5d(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range res.Comparisons[0].Runs {
				b.ReportMetric(r.Err*100, string(r.Method)+"-err-pct")
			}
		}
	}
}

func BenchmarkFig6AnticipationSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, s := range res.Series {
				if s.Label == "original" {
					b.ReportMetric(s.Throughput[len(s.Throughput)-1]/s.Throughput[0], "orig-100ms/1ms-x")
				}
			}
		}
	}
}

func BenchmarkFig7aLevelDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// One source/target pair per workload here; the full 7x7 matrix
		// runs in BenchmarkFig7bErrorCDF and cmd/rootbench.
		p := experiments.Quick()
		res, err := experiments.Fig7Pair(p, 0, 6) // ext4-hdd -> ext4-ssd
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range res.Runs {
				b.ReportMetric(r.Err*100, string(r.Method)+"-err-pct")
			}
		}
	}
}

func BenchmarkFig7bErrorCDF(b *testing.B) {
	if testing.Short() {
		b.Skip("full 7x7 matrix")
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(experiments.Quick(), 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.MeanError(artc.MethodARTC)*100, "artc-mean-err-pct")
			b.ReportMetric(res.MeanError(artc.MethodTemporal)*100, "temporal-mean-err-pct")
			b.ReportMetric(res.MeanError(artc.MethodSingle)*100, "single-mean-err-pct")
		}
	}
}

func BenchmarkFig8DependencyGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			// artc-edges stays the raw BuildGraph count so the metric is
			// comparable across revisions with and without reduction;
			// artc-enforced-edges is what the replayer actually waits on.
			b.ReportMetric(float64(res.ARTC.Edges+res.ARTC.ReducedEdges), "artc-edges")
			b.ReportMetric(float64(res.ARTC.Edges), "artc-enforced-edges")
			b.ReportMetric(float64(res.Temporal.Edges), "temporal-edges")
			b.ReportMetric(float64(res.ARTC.MeanLength)/float64(res.Temporal.MeanLength), "edge-span-ratio")
		}
	}
}

func BenchmarkFig9Concurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Relative(artc.MethodARTC)*100, "artc-concurrency-pct")
			b.ReportMetric(res.Relative(artc.MethodTemporal)*100, "temporal-concurrency-pct")
		}
	}
}

func BenchmarkFig10ThreadTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := experiments.Quick()
		res, err := experiments.Fig10(p, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.MeanSpeedup(), "hdd/ssd-threadtime-x")
		}
	}
}

// BenchmarkReplayObsOff and BenchmarkReplayObsOn measure the replayer
// with the observability recorder disabled and enabled on the same
// mid-size Magritte benchmark. Off must stay within noise of the
// recorder-less replayer (the disabled path is one nil check per
// action); the On/Off delta is the recording cost itself.
func benchmarkReplayObs(b *testing.B, rec func() *obs.Recorder) {
	spec, _ := magritte.SpecByName("pages_docphoto15")
	gen, err := magritte.Generate(spec, magritte.GenOptions{Scale: 0.02, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	bench, err := Compile(gen.Trace, gen.Snapshot, DefaultModes())
	if err != nil {
		b.Fatal(err)
	}
	target := magritte.DefaultSuiteOptions().Target
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		sys := stack.New(k, target)
		if err := magritte.InitTarget(sys, bench, true); err != nil {
			b.Fatal(err)
		}
		if _, err := artc.Replay(sys, bench, artc.Options{Obs: rec()}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(gen.Trace.Records)), "records")
}

func BenchmarkReplayObsOff(b *testing.B) {
	benchmarkReplayObs(b, func() *obs.Recorder { return nil })
}

func BenchmarkReplayObsOn(b *testing.B) {
	benchmarkReplayObs(b, func() *obs.Recorder { return obs.NewRecorder(0, 0) })
}

// BenchmarkReplayFault{Off,On} bound fault injection's replay cost on
// the same mid-size Magritte benchmark. Off (no injector at all) must
// stay within noise of BenchmarkReplayObsOff — the disabled path is one
// nil check per action and no device wrapping — while On carries a
// modest syscall+storage rate with retries, watchdog, and both fault
// sites armed.
func benchmarkReplayFault(b *testing.B, plan func() *fault.Plan) {
	spec, _ := magritte.SpecByName("pages_docphoto15")
	gen, err := magritte.Generate(spec, magritte.GenOptions{Scale: 0.02, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	bench, err := Compile(gen.Trace, gen.Snapshot, DefaultModes())
	if err != nil {
		b.Fatal(err)
	}
	target := magritte.DefaultSuiteOptions().Target
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var in *fault.Injector
		conf := target
		if p := plan(); p != nil {
			in = fault.New(*p)
			conf.Faults = in
		}
		k := sim.NewKernel()
		sys := stack.New(k, conf)
		if err := magritte.InitTarget(sys, bench, true); err != nil {
			b.Fatal(err)
		}
		if _, err := artc.Replay(sys, bench, artc.Options{Fault: in}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(gen.Trace.Records)), "records")
}

func BenchmarkReplayFaultOff(b *testing.B) {
	benchmarkReplayFault(b, func() *fault.Plan { return nil })
}

func BenchmarkReplayFaultOn(b *testing.B) {
	benchmarkReplayFault(b, func() *fault.Plan {
		return &fault.Plan{
			Seed:    1,
			Syscall: fault.SyscallPlan{Rate: 0.01},
			Storage: fault.StoragePlan{ErrorRate: 0.01, SlowRate: 0.01},
			Retry:   fault.RetryPlan{MaxAttempts: 4},
		}
	})
}

// BenchmarkCompile measures the compiler itself on a mid-size Magritte
// trace: records/sec through analysis + graph building.
func BenchmarkCompile(b *testing.B) {
	spec, _ := magritte.SpecByName("pages_docphoto15")
	gen, err := magritte.Generate(spec, magritte.GenOptions{Scale: 0.02, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(gen.Trace, gen.Snapshot, DefaultModes()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(gen.Trace.Records)), "records")
}
