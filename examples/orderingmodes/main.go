// orderingmodes: demonstrate ROOT's ordering rules doing their job.
//
// A trace with a cross-thread descriptor handoff is replayed under a
// ladder of mode sets, from "thread order only" (which races and breaks
// semantics) through ARTC's defaults to program_seq (a total order that
// kills all concurrency). The printout shows, per mode set, how many
// constraint edges were enforced, semantic correctness, elapsed time,
// and the achieved system-call concurrency — the
// overconstraint/underconstraint tradeoff of §3.2 in one table.
//
//	go run ./examples/orderingmodes
package main

import (
	"fmt"
	"log"

	"rootreplay"
	"rootreplay/internal/artc"
	"rootreplay/internal/core"
	"rootreplay/internal/sim"
	"rootreplay/internal/snapshot"
	"rootreplay/internal/stack"
	"rootreplay/internal/trace"
)

func main() {
	conf := stack.DefaultConfig()
	tr, snap := traceHandoffProgram(conf)
	fmt.Printf("traced %d calls across %d threads\n\n", len(tr.Records), len(tr.Threads()))

	b, err := rootreplay.Compile(tr, snap, rootreplay.DefaultModes())
	if err != nil {
		log.Fatal(err)
	}

	ladder := []struct {
		name  string
		modes core.ModeSet
	}{
		{"thread_seq only", core.ModeSet{}},
		{"fd_stage", core.ModeSet{FDStage: true}},
		{"fd_seq", core.ModeSet{FDSeq: true}},
		{"path_stage+name", core.ModeSet{PathStageName: true}},
		{"artc defaults", core.DefaultModes()},
		{"program_seq", core.ModeSet{ProgramSeq: true}},
	}
	fmt.Printf("%-18s %7s %10s %8s %12s\n", "modes", "edges", "elapsed", "errors", "concurrency")
	for _, step := range ladder {
		g := core.BuildGraph(b.Analysis, step.modes)
		sys := stack.New(sim.NewKernel(), conf)
		if err := rootreplay.InitSystem(sys, b); err != nil {
			log.Fatal(err)
		}
		modes := step.modes
		rep, err := rootreplay.Replay(sys, b, artc.Options{Method: artc.MethodARTC, Modes: &modes})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %7d %10v %8d %12.2f\n",
			step.name, len(g.Edges), rep.Elapsed.Round(1000), rep.Errors, rep.Concurrency())
	}
}

// traceHandoffProgram records a three-stage pipeline: an opener thread
// opens files and passes descriptors to a reader, which passes them to a
// closer — the pattern from the paper's introduction ("one thread opens
// a file, a second thread writes to it, and a third closes it").
func traceHandoffProgram(conf stack.Config) (*trace.Trace, *snapshot.Snapshot) {
	k := sim.NewKernel()
	sys := stack.New(k, conf)
	for i := 0; i < 12; i++ {
		if err := sys.SetupCreate(fmt.Sprintf("/data/f%02d", i), 256<<10); err != nil {
			log.Fatal(err)
		}
	}
	snap := snapshot.Capture(sys)
	tr := &trace.Trace{Platform: string(conf.Platform)}
	sys.SetTracer(func(r *trace.Record) { tr.Records = append(tr.Records, r) })

	toRead := sim.NewChan[int64](k, 4)
	toClose := sim.NewChan[int64](k, 4)
	k.Spawn("opener", func(t *sim.Thread) {
		for i := 0; i < 12; i++ {
			fd, err := sys.Open(t, fmt.Sprintf("/data/f%02d", i), trace.ORdonly, 0)
			if err == 0 {
				toRead.Send(t, fd)
			}
		}
		toRead.Close()
	})
	k.Spawn("reader", func(t *sim.Thread) {
		for {
			fd, ok := toRead.Recv(t)
			if !ok {
				toClose.Close()
				return
			}
			sys.Pread(t, fd, 64<<10, 0)
			sys.Pread(t, fd, 64<<10, 128<<10)
			toClose.Send(t, fd)
		}
	})
	k.Spawn("closer", func(t *sim.Thread) {
		for {
			fd, ok := toClose.Recv(t)
			if !ok {
				return
			}
			sys.Close(t, fd)
		}
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	tr.Renumber()
	return tr, snap
}
