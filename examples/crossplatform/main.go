// crossplatform: replay a Mac OS X application trace on a Linux
// machine. The trace uses OS X-specific calls (getattrlist,
// exchangedata, F_FULLFSYNC, reads from the non-blocking /dev/random);
// the replayer emulates each with the nearest Linux equivalent, and the
// /dev/random -> /dev/urandom symlink trick keeps replay from blocking
// (§4.3.4, §5.1).
//
//	go run ./examples/crossplatform
package main

import (
	"fmt"
	"log"

	"rootreplay"
	"rootreplay/internal/magritte"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
)

func main() {
	spec, ok := magritte.SpecByName("itunes_startsmall1")
	if !ok {
		log.Fatal("unknown Magritte trace")
	}
	gen, err := magritte.Generate(spec, magritte.GenOptions{Scale: 0.05, Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}
	osxCalls := 0
	for _, r := range gen.Trace.Records {
		switch r.Call {
		case "getattrlist", "setattrlist", "exchangedata", "searchfs", "fsctl", "vfsconf", "getdirentriesattr":
			osxCalls++
		}
	}
	fmt.Printf("generated %s: %d records on platform %q (%d OS X-specific calls)\n",
		spec.FullName(), len(gen.Trace.Records), gen.Trace.Platform, osxCalls)

	b, err := rootreplay.Compile(gen.Trace, gen.Snapshot, rootreplay.DefaultModes())
	if err != nil {
		log.Fatal(err)
	}

	linux := stack.Config{
		Name: "linux-ext4-ssd", Platform: stack.Linux, Profile: stack.Ext4,
		Device: stack.DeviceSSD, Scheduler: stack.SchedNoop,
	}
	for _, fix := range []bool{true, false} {
		sys := stack.New(sim.NewKernel(), linux)
		if err := magritte.InitTarget(sys, b, fix); err != nil {
			log.Fatal(err)
		}
		rep, err := rootreplay.Replay(sys, b, rootreplay.Options{})
		if err != nil {
			log.Fatal(err)
		}
		label := "with /dev/random symlink fix"
		if !fix {
			label = "without fix (blocking /dev/random)"
		}
		fmt.Printf("%-36s elapsed=%-14v emulated-calls=%d errors=%d\n",
			label, rep.Elapsed, rep.Emulated, rep.Errors)
	}
}
