// Quickstart: parse an strace-format trace, compile it with ARTC, and
// replay it on a simulated machine — the whole pipeline in one file.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"rootreplay"
)

// A tiny two-thread strace capture: thread 1001 opens and hands a file
// to thread 1002 through a shared descriptor, while creating an output
// file it renames into place.
const sample = `1001 1679588291.000100 open("/data/input.csv", O_RDONLY) = 3 <0.000020>
1001 1679588291.000200 read(3, "a,b,c"..., 8192) = 8192 <0.000150>
1002 1679588291.000300 read(3, "d,e,f"..., 8192) = 8192 <0.000140>
1002 1679588291.000500 open("/data/out.tmp", O_WRONLY|O_CREAT|O_TRUNC, 0644) = 4 <0.000030>
1002 1679588291.000600 write(4, "result"..., 4096) = 4096 <0.000050>
1002 1679588291.000700 fsync(4) = 0 <0.002100>
1002 1679588291.000900 close(4) = 0 <0.000004>
1002 1679588291.001000 rename("/data/out.tmp", "/data/out.csv") = 0 <0.000040>
1001 1679588291.001100 close(3) = 0 <0.000005>
1001 1679588291.001200 stat("/data/out.csv", {st_size=4096}) = 0 <0.000012>
`

func main() {
	// 1. Parse the trace. The initial file tree (input.csv must exist,
	//    sized to cover the reads) is inferred from the trace itself.
	tr, err := rootreplay.ParseStrace(strings.NewReader(sample))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d records from %d threads\n", len(tr.Records), len(tr.Threads()))

	// 2. Compile: ROOT's resource analysis turns the trace into a
	//    partial order (who must wait for whom).
	b, err := rootreplay.Compile(tr, nil, rootreplay.DefaultModes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d cross-thread dependency edges\n", len(b.Graph.Edges))
	for _, e := range b.Graph.Edges {
		fmt.Printf("  action %d waits for action %d (resource %s)\n", e.To, e.From, e.Res)
	}

	// 3. Replay on a simulated Linux/ext4/HDD machine.
	for _, method := range []rootreplay.Method{
		rootreplay.MethodARTC, rootreplay.MethodSingle, rootreplay.MethodUnconstrained,
	} {
		sys := rootreplay.NewSystem(rootreplay.DefaultConfig())
		if err := rootreplay.InitSystem(sys, b); err != nil {
			log.Fatal(err)
		}
		rep, err := rootreplay.Replay(sys, b, rootreplay.Options{Method: method})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s elapsed=%-10v semantic-errors=%d\n", method, rep.Elapsed, rep.Errors)
	}
}
