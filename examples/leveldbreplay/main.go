// leveldbreplay: the paper's macrobenchmark scenario (§5.2.2) as an
// application of the public API — predict how an embedded database
// workload traced on a disk-backed machine would perform on an SSD, and
// compare each replay method's prediction with the truth.
//
//	go run ./examples/leveldbreplay
package main

import (
	"fmt"
	"log"

	"rootreplay"
	"rootreplay/internal/leveldb"
	"rootreplay/internal/metrics"
	"rootreplay/internal/sim"
	"rootreplay/internal/stack"
	"rootreplay/internal/workload"
)

func main() {
	source := stack.Config{
		Name: "office-server (ext4/hdd)", Platform: stack.Linux,
		Profile: stack.Ext4, Device: stack.DeviceHDD, Scheduler: stack.SchedCFQ,
	}
	target := stack.Config{
		Name: "new-ssd-box (ext4/ssd)", Platform: stack.Linux,
		Profile: stack.Ext4, Device: stack.DeviceSSD, Scheduler: stack.SchedCFQ,
	}
	mkWorkload := func() *leveldb.ReadRandom {
		return &leveldb.ReadRandom{Threads: 8, OpsPerThread: 150, Records: 10000, ValueBytes: 512, Seed: 99}
	}

	// Trace the database's measured phase on the source machine.
	tr, snap, srcElapsed, err := workload.TraceWorkload(source, mkWorkload())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced readrandom on %s: %d syscalls, %v\n", source.Name, len(tr.Records), srcElapsed)

	// Ground truth: the real program on the target.
	truth, err := workload.Run(target, mkWorkload())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground truth on %s: %v\n\n", target.Name, truth)

	// Predictions by replaying the source trace on the target.
	b, err := rootreplay.Compile(tr, snap, rootreplay.DefaultModes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("predictions from replaying the HDD trace on the SSD:")
	for _, method := range []rootreplay.Method{
		rootreplay.MethodSingle, rootreplay.MethodTemporal, rootreplay.MethodARTC,
	} {
		sys := stack.New(sim.NewKernel(), target)
		if err := rootreplay.InitSystem(sys, b); err != nil {
			log.Fatal(err)
		}
		rep, err := rootreplay.Replay(sys, b, rootreplay.Options{Method: method})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s predicts %-12v (error %s, concurrency %.2f)\n",
			method, rep.Elapsed, metrics.PctString(metrics.RelError(rep.Elapsed, truth)), rep.Concurrency())
	}
}
