// magrittestudy: the paper's §6 case study — use Magritte benchmarks and
// ARTC's detailed output to compare where thread-time goes on a disk
// versus an SSD, per application family (Figure 10).
//
//	go run ./examples/magrittestudy
package main

import (
	"fmt"
	"log"
	"time"

	"rootreplay"
	"rootreplay/internal/magritte"
	"rootreplay/internal/stack"
)

func main() {
	traces := []string{"iphoto_start400", "itunes_album1", "pages_open15", "numbers_start5", "keynote_play20"}
	hdd := stack.Config{Name: "linux-ext4-hdd", Platform: stack.Linux,
		Profile: stack.Ext4, Device: stack.DeviceHDD, Scheduler: stack.SchedCFQ}
	ssd := hdd
	ssd.Name, ssd.Device = "linux-ext4-ssd", stack.DeviceSSD

	fmt.Printf("%-18s %-5s %9s  %s\n", "trace", "dev", "total", "breakdown (share of HDD thread-time)")
	for _, name := range traces {
		spec, ok := magritte.SpecByName(name)
		if !ok {
			log.Fatalf("unknown trace %s", name)
		}
		gen, err := magritte.Generate(spec, magritte.GenOptions{Scale: 0.02, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		b, err := rootreplay.Compile(gen.Trace, gen.Snapshot, rootreplay.DefaultModes())
		if err != nil {
			log.Fatal(err)
		}
		hddCat, hddTotal, err := magritte.ThreadTimeRun(b, hdd, true)
		if err != nil {
			log.Fatal(err)
		}
		ssdCat, ssdTotal, err := magritte.ThreadTimeRun(b, ssd, true)
		if err != nil {
			log.Fatal(err)
		}
		print := func(dev string, byCat map[string]time.Duration, total time.Duration) {
			line := fmt.Sprintf("%-18s %-5s %9v ", name, dev, total.Round(time.Millisecond))
			for _, cat := range magritte.Categories {
				share := float64(byCat[cat]) / float64(hddTotal)
				line += fmt.Sprintf(" %s=%.2f", cat, share)
			}
			fmt.Println(line)
			name = ""
		}
		print("hdd", hddCat, hddTotal)
		print("ssd", ssdCat, ssdTotal)
		fmt.Printf("%-18s speedup: %.1fx\n", "", float64(hddTotal)/float64(ssdTotal))
	}
}
