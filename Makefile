GO ?= go

.PHONY: build test race vet bench perfstat profile ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench 'Compile' -benchtime 1x -benchmem .
	$(GO) test -run '^$$' -bench 'Kernel|OracleHeap' -benchmem ./internal/sim/
	$(GO) test -run '^$$' -bench 'ParseStrace|ParseSharded' -benchmem ./internal/trace/
	$(GO) run ./cmd/perfstat -o BENCH_pr4.json
	@if [ -f BENCH_pr3.json ]; then $(GO) run ./cmd/benchcmp BENCH_pr3.json BENCH_pr4.json; fi

perfstat:
	$(GO) run ./cmd/perfstat -o BENCH_pr4.json

# CPU and heap profiles of the perfstat workload (compile + replay +
# kernel microbenchmarks); inspect with `go tool pprof cpu.out`.
profile:
	$(GO) run ./cmd/perfstat -o /dev/null -cpuprofile cpu.out -memprofile mem.out
	@echo "wrote cpu.out and mem.out; open with: $(GO) tool pprof cpu.out"

ci:
	./scripts/ci.sh
