GO ?= go
TAG ?= pr7

.PHONY: build test race vet bench perfstat profile chaos fuzz ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Microbenchmarks plus the perfstat snapshot/gate lane (writes
# BENCH_$(TAG).json and compares against the newest earlier snapshot).
bench:
	$(GO) test -run '^$$' -bench 'Kernel|OracleHeap' -benchmem ./internal/sim/
	$(GO) test -run '^$$' -bench 'ParseStrace|ParseSharded' -benchmem ./internal/trace/
	$(GO) test -run '^$$' -bench 'ReplayFault' -benchtime 1x -benchmem .
	./scripts/ci.sh bench $(TAG)

perfstat:
	$(GO) run ./cmd/perfstat -o BENCH_$(TAG).json

# CPU and heap profiles of the perfstat workload (compile + replay +
# kernel microbenchmarks); inspect with `go tool pprof cpu.out`.
profile:
	$(GO) run ./cmd/perfstat -o /dev/null -cpuprofile cpu.out -memprofile mem.out
	@echo "wrote cpu.out and mem.out; open with: $(GO) tool pprof cpu.out"

# Seeded fault-injection sweep over the Magritte corpus; exits non-zero
# on any chaos-invariant violation.
chaos:
	./scripts/ci.sh chaos

fuzz:
	./scripts/ci.sh fuzz

ci:
	./scripts/ci.sh all $(TAG)
