GO ?= go

.PHONY: build test race vet bench perfstat ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench 'Compile' -benchtime 1x -benchmem .

perfstat:
	$(GO) run ./cmd/perfstat -o BENCH_pr1.json

ci:
	./scripts/ci.sh
