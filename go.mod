module rootreplay

go 1.22
