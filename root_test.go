package rootreplay

import (
	"bytes"
	"strings"
	"testing"
)

// The public-facade integration test: strace in, compiled benchmark out,
// replayed on two machine configurations, benchmark file round-tripped.
func TestFacadeEndToEnd(t *testing.T) {
	const straceIn = `1 1679588291.000100 open("/in/data", O_RDONLY) = 3 <0.000020>
1 1679588291.000200 read(3, "x"..., 65536) = 65536 <0.000150>
2 1679588291.000300 read(3, "y"..., 65536) = 65536 <0.000140>
2 1679588291.000500 open("/out/result", O_WRONLY|O_CREAT, 0644) = 4 <0.000030>
2 1679588291.000600 write(4, "r"..., 4096) = 4096 <0.000050>
2 1679588291.000700 fsync(4) = 0 <0.002000>
2 1679588291.000900 close(4) = 0 <0.000004>
1 1679588291.001000 close(3) = 0 <0.000005>
`
	tr, err := ParseStrace(strings.NewReader(straceIn))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 8 || len(tr.Threads()) != 2 {
		t.Fatalf("parsed %d records / %d threads", len(tr.Records), len(tr.Threads()))
	}
	b, err := Compile(tr, nil, DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the benchmark file.
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b2, err := DecodeBenchmark(&buf)
	if err != nil {
		t.Fatal(err)
	}

	hdd := DefaultConfig()
	ssd := DefaultConfig()
	ssd.Name, ssd.Device = "linux-ext4-ssd", "ssd"
	var hddTime, ssdTime int64
	for _, conf := range []Config{hdd, ssd} {
		sys := NewSystem(conf)
		if err := InitSystem(sys, b2); err != nil {
			t.Fatal(err)
		}
		rep, err := Replay(sys, b2, Options{Method: MethodARTC, SelfCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors != 0 {
			t.Fatalf("%s: %d errors: %v", conf.Name, rep.Errors, rep.ErrorSamples)
		}
		if conf.Device == "ssd" {
			ssdTime = int64(rep.Elapsed)
		} else {
			hddTime = int64(rep.Elapsed)
		}
		// Timeline rendering works against the decoded benchmark.
		tl := rep.Timeline(b2, 40)
		if !strings.Contains(tl, "T") || !strings.Contains(tl, "#") {
			t.Fatalf("timeline:\n%s", tl)
		}
	}
	if ssdTime >= hddTime {
		t.Fatalf("SSD replay (%d) not faster than HDD (%d)", ssdTime, hddTime)
	}
}

func TestFacadeIBenchAndModes(t *testing.T) {
	const ib = `1679.000001 1679.000030 7 open 3 0 "/Library/x" 0x0 0644
1679.000100 1679.000120 7 pread 4096 0 3 4096 0
1679.000200 1679.000210 7 close 0 0 3
`
	tr, err := ParseIBench(strings.NewReader(ib))
	if err != nil {
		t.Fatal(err)
	}
	modes, err := ParseModes("file_seq,fd_stage")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(tr, nil, modes)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(DefaultConfig())
	if err := InitSystem(sys, b); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(sys, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors: %v", rep.ErrorSamples)
	}
}
